//! Reservoir sampling.
//!
//! The related-work substrate (§1.3 cites Vitter's algorithm R and its
//! descendants) and the randomness backbone of the entropy estimator:
//! a uniform sample of *positions* of the stream, maintained in one pass.
//!
//! * [`ReservoirSampler`] — classic algorithm R: slot `i` of the reservoir
//!   is a uniform draw from the prefix at all times.
//! * [`WeightedReservoir`] — Efraimidis–Spirakis weighted sampling
//!   (`key = u^{1/w}`), covering the weighted-stream generalisations the
//!   paper's related work discusses.

use std::collections::BinaryHeap;

use sss_codec::{CodecError, Reader, WireCodec};
use sss_hash::{RngCore64, Xoshiro256pp};

/// Uniform k-out-of-n reservoir (algorithm R).
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    capacity: usize,
    items: Vec<T>,
    seen: u64,
    rng: Xoshiro256pp,
}

impl<T> ReservoirSampler<T> {
    /// Reservoir holding `capacity ≥ 1` items.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            items: Vec::with_capacity(capacity),
            seen: 0,
            rng: Xoshiro256pp::new(seed),
        }
    }

    /// Number of stream elements offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample (uniform without replacement from the prefix).
    pub fn sample(&self) -> &[T] {
        &self.items
    }

    /// Offer the next stream element.
    pub fn offer(&mut self, x: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(x);
        } else {
            let j = self.rng.next_below(self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = x;
            }
        }
    }
}

/// Efraimidis–Spirakis weighted reservoir: each item gets key `u^{1/w}`;
/// the `k` largest keys form a weighted sample without replacement.
#[derive(Debug, Clone)]
pub struct WeightedReservoir<T> {
    capacity: usize,
    /// Min-heap on key via `Reverse`-style ordering of (−key) — we store
    /// (key, tiebreak, item) in a BinaryHeap of `HeapEntry`.
    heap: BinaryHeap<HeapEntry<T>>,
    counter: u64,
    rng: Xoshiro256pp,
}

#[derive(Debug, Clone)]
struct HeapEntry<T> {
    /// Negated key so the max-heap pops the *smallest* key first.
    neg_key: f64,
    tiebreak: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.neg_key == other.neg_key && self.tiebreak == other.tiebreak
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.neg_key
            .total_cmp(&other.neg_key)
            .then(self.tiebreak.cmp(&other.tiebreak))
    }
}

impl<T> WeightedReservoir<T> {
    /// Weighted reservoir holding `capacity ≥ 1` items.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
            counter: 0,
            rng: Xoshiro256pp::new(seed),
        }
    }

    /// Offer an element with positive weight `w`.
    pub fn offer(&mut self, x: T, w: f64) {
        assert!(w > 0.0, "weights must be positive");
        self.counter += 1;
        // key = u^{1/w}; store −key so the heap root is the smallest key.
        let u = (1.0 - self.rng.next_f64()).max(f64::MIN_POSITIVE);
        let key = u.powf(1.0 / w);
        let entry = HeapEntry {
            neg_key: -key,
            tiebreak: self.counter,
            item: x,
        };
        if self.heap.len() < self.capacity {
            self.heap.push(entry);
        } else if let Some(min) = self.heap.peek() {
            if key > -min.neg_key {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// The current weighted sample.
    pub fn sample(&self) -> Vec<&T> {
        self.heap.iter().map(|e| &e.item).collect()
    }
}

impl WireCodec for ReservoirSampler<u64> {
    const WIRE_TAG: u16 = 0x020F;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.capacity.encode_into(out);
        self.seen.encode_into(out);
        self.items.encode_into(out);
        self.rng.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let capacity = usize::decode(r)?;
        let seen = r.u64()?;
        let items: Vec<u64> = Vec::decode(r)?;
        if capacity == 0 {
            return Err(CodecError::Invalid {
                what: "ReservoirSampler capacity == 0",
            });
        }
        if items.len() as u64 != seen.min(capacity as u64) {
            return Err(CodecError::Invalid {
                what: "ReservoirSampler fill does not match seen/capacity",
            });
        }
        let rng = Xoshiro256pp::decode(r)?;
        Ok(ReservoirSampler {
            capacity,
            items,
            seen,
            rng,
        })
    }
}

impl WireCodec for WeightedReservoir<u64> {
    const WIRE_TAG: u16 = 0x0210;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.capacity.encode_into(out);
        self.counter.encode_into(out);
        // Heap entries in internal order: re-heapifying an already-valid
        // heap is the identity, so the decoded sampler's future evictions
        // replay bit for bit.
        let rows: Vec<(f64, u64, u64)> = self
            .heap
            .iter()
            .map(|e| (e.neg_key, e.tiebreak, e.item))
            .collect();
        rows.encode_into(out);
        self.rng.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let capacity = usize::decode(r)?;
        let counter = r.u64()?;
        let rows: Vec<(f64, u64, u64)> = Vec::decode(r)?;
        if capacity == 0 {
            return Err(CodecError::Invalid {
                what: "WeightedReservoir capacity == 0",
            });
        }
        if rows.len() > capacity || rows.len() as u64 > counter {
            return Err(CodecError::Invalid {
                what: "WeightedReservoir holds more entries than offered/capacity",
            });
        }
        let mut entries = Vec::with_capacity(rows.len());
        for (neg_key, tiebreak, item) in rows {
            if !(neg_key.is_finite() && neg_key <= 0.0) || tiebreak == 0 || tiebreak > counter {
                return Err(CodecError::Invalid {
                    what: "WeightedReservoir entry key/tiebreak invalid",
                });
            }
            entries.push(HeapEntry {
                neg_key,
                tiebreak,
                item,
            });
        }
        let rng = Xoshiro256pp::decode(r)?;
        Ok(WeightedReservoir {
            capacity,
            heap: BinaryHeap::from(entries),
            counter,
            rng,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_fills_then_holds_capacity() {
        let mut r = ReservoirSampler::new(10, 1);
        for x in 0..5u64 {
            r.offer(x);
        }
        assert_eq!(r.sample().len(), 5);
        for x in 5..1000u64 {
            r.offer(x);
        }
        assert_eq!(r.sample().len(), 10);
        assert_eq!(r.seen(), 1000);
    }

    #[test]
    fn reservoir_is_uniform() {
        // Inclusion probability of element 0 across seeds ≈ k/n.
        let k = 5;
        let n = 100u64;
        let trials = 20_000;
        let mut hits = 0u64;
        for seed in 0..trials {
            let mut r = ReservoirSampler::new(k, seed);
            for x in 0..n {
                r.offer(x);
            }
            if r.sample().contains(&0) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        let expect = k as f64 / n as f64;
        assert!((rate - expect).abs() < 0.01, "rate {rate} expect {expect}");
    }

    #[test]
    fn reservoir_uniform_over_positions_chi2_smoke() {
        // Single-slot reservoir: position of retained element uniform on [0,n).
        let n = 20u64;
        let trials = 40_000;
        let mut counts = vec![0u64; n as usize];
        for seed in 0..trials {
            let mut r = ReservoirSampler::new(1, seed);
            for x in 0..n {
                r.offer(x);
            }
            counts[r.sample()[0] as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // df = 19; P[chi2 > 45] < 0.001.
        assert!(chi2 < 45.0, "chi2 = {chi2}");
    }

    #[test]
    fn weighted_reservoir_prefers_heavy_items() {
        let trials = 4000;
        let mut heavy_hits = 0u64;
        for seed in 0..trials {
            let mut r = WeightedReservoir::new(1, seed);
            r.offer("light", 1.0);
            r.offer("heavy", 9.0);
            if *r.sample()[0] == "heavy" {
                heavy_hits += 1;
            }
        }
        let rate = heavy_hits as f64 / trials as f64;
        assert!((rate - 0.9).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn weighted_reservoir_capacity() {
        let mut r = WeightedReservoir::new(3, 7);
        for x in 0..100u64 {
            r.offer(x, 1.0 + (x % 5) as f64);
        }
        assert_eq!(r.sample().len(), 3);
    }
}
