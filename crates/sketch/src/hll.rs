//! HyperLogLog (Flajolet, Fusy, Gandouet & Meunier, AofA 2007).
//!
//! The engineering-standard distinct counter: `2^b` registers each holding
//! the maximum "rank" (leading-zero count + 1) of hashes routed to them;
//! the harmonic mean of `2^{−register}` estimates cardinality with relative
//! standard error `≈ 1.04/√(2^b)` in `O(2^b)` *bytes*. Provided as the
//! engineering alternative to [`crate::kmv`] for Algorithm 2's `F_0(L)`
//! black box; includes the standard small-range (linear counting)
//! correction.

use sss_codec::{put_len, CodecError, Reader, WireCodec};
use sss_hash::TabulationHash;

/// HyperLogLog sketch with `2^precision` one-byte registers.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    precision: u32,
    registers: Vec<u8>,
    hash: TabulationHash,
}

impl HyperLogLog {
    /// Sketch with `2^precision` registers, `4 ≤ precision ≤ 18`.
    pub fn new(precision: u32, seed: u64) -> Self {
        assert!((4..=18).contains(&precision), "precision must be in 4..=18");
        Self {
            precision,
            registers: vec![0; 1 << precision],
            hash: TabulationHash::new(seed),
        }
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Space in 64-bit words (registers are bytes).
    pub fn space_words(&self) -> usize {
        self.registers.len().div_ceil(8)
    }

    /// Ingest one occurrence of `x`.
    pub fn update(&mut self, x: u64) {
        let h = self.hash.hash(x);
        let idx = (h >> (64 - self.precision)) as usize;
        let rest = h << self.precision;
        // Rank: position of the leftmost 1 in the remaining bits, 1-based;
        // all-zero remainder gets the maximum rank.
        let rank = (rest.leading_zeros() + 1).min(64 - self.precision + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Ingest a batch of occurrences (same result as one-by-one updates).
    pub fn update_batch(&mut self, xs: &[u64]) {
        for &x in xs {
            self.update(x);
        }
    }

    /// Cardinality estimate with small-range correction.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // Linear counting when many registers are still empty.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merge another sketch with the same precision and seed (register max).
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.precision, other.precision, "precision mismatch");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
    }
}

impl WireCodec for HyperLogLog {
    const WIRE_TAG: u16 = 0x020C;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.precision.encode_into(out);
        put_len(out, self.registers.len());
        out.extend_from_slice(&self.registers);
        self.hash.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let precision = r.u32()?;
        if !(4..=18).contains(&precision) {
            return Err(CodecError::Invalid {
                what: "HyperLogLog precision outside 4..=18",
            });
        }
        let len = r.len_prefix(1)?;
        if len != 1usize << precision {
            return Err(CodecError::Invalid {
                what: "HyperLogLog register count != 2^precision",
            });
        }
        let registers = r.take(len)?.to_vec();
        let max_rank = (64 - precision + 1) as u8;
        if registers.iter().any(|&v| v > max_rank) {
            return Err(CodecError::Invalid {
                what: "HyperLogLog register above the maximum rank",
            });
        }
        let hash = TabulationHash::decode(r)?;
        Ok(HyperLogLog {
            precision,
            registers,
            hash,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_within_expected_error() {
        for &truth in &[100u64, 10_000, 1_000_000] {
            let mut h = HyperLogLog::new(12, 1);
            for x in 0..truth {
                h.update(x);
            }
            let est = h.estimate();
            let rel = (est - truth as f64).abs() / truth as f64;
            // σ ≈ 1.04/√4096 ≈ 1.6%; allow 5σ.
            assert!(rel < 0.08, "truth {truth}: rel {rel}");
        }
    }

    #[test]
    fn duplicates_ignored() {
        let mut h = HyperLogLog::new(10, 2);
        for _ in 0..50 {
            for x in 0..2000u64 {
                h.update(x);
            }
        }
        let rel = (h.estimate() - 2000.0).abs() / 2000.0;
        assert!(rel < 0.15, "rel = {rel}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(11, 3);
        let mut b = HyperLogLog::new(11, 3);
        let mut u = HyperLogLog::new(11, 3);
        for x in 0..30_000u64 {
            a.update(x);
            u.update(x);
        }
        for x in 15_000..45_000u64 {
            b.update(x);
            u.update(x);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLog::new(8, 4);
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn precision_bounds_enforced() {
        let _ = HyperLogLog::new(3, 0);
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_rejects_different_precision() {
        let mut a = HyperLogLog::new(8, 1);
        let b = HyperLogLog::new(9, 1);
        a.merge(&b);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = HyperLogLog::new(10, 2);
        for x in 0..5000u64 {
            a.update(x);
        }
        let before = a.estimate();
        let copy = a.clone();
        a.merge(&copy); // self-union changes nothing
        assert_eq!(a.estimate(), before);
    }

    #[test]
    fn small_range_uses_linear_counting() {
        // With 2^12 registers and 100 items, most registers are zero —
        // the linear-counting path must make the estimate near exact.
        let mut h = HyperLogLog::new(12, 3);
        for x in 0..100u64 {
            h.update(x);
        }
        let rel = (h.estimate() - 100.0).abs() / 100.0;
        assert!(rel < 0.05, "rel = {rel}");
    }
}
