//! Streaming empirical-entropy estimation.
//!
//! An unbiased suffix-count estimator in the style of Chakrabarti, Cormode &
//! McGregor (SODA 2007). A reservoir slot holds `(item a_J, r)` where `J` is
//! a uniformly random position of the prefix and `r` counts occurrences of
//! `a_J` in the suffix starting at `J`. The statistic
//!
//! ```text
//! X(r) = r·lg(n/r) − (r−1)·lg(n/(r−1))
//! ```
//!
//! telescopes to `E[X] = Σ_i (f_i/n)·lg(n/f_i) = H(f)` — exactly the
//! paper's Definition 3. Averaging `t` independent slots concentrates the
//! estimate; `X ∈ [−lg e, lg n]`, so `t = O(ε⁻²·log²n·log δ⁻¹)` gives a
//! `(1+ε, δ)` *multiplicative* guarantee whenever `H` is bounded away from
//! zero — precisely the regime of the paper's Theorem 5
//! (`H(f) = ω(p^{−1/2}n^{−1/6})`).
//!
//! Low-entropy streams are dominated by one element `z`; there the plain
//! estimator's variance explodes, and CCM's fix is to estimate the
//! conditional entropy of the stream *without* `z` and recombine through
//! the exact identity
//!
//! ```text
//! H = (1−p_z)·H(S¬z) + (1−p_z)·lg 1/(1−p_z) + p_z·lg 1/p_z .
//! ```
//!
//! We detect `z` with a Misra–Gries tracker and maintain a second reservoir
//! over the conditional stream from the moment a majority candidate
//! emerges (restarting it if the leader changes — leaders are stable on
//! dominated streams; the approximation is documented, and the exact CCM
//! leader-pair bookkeeping would cost the same space while adding nothing
//! in the regimes exercised here).
//!
//! **Cost.** Slot replacements at position `n` happen with probability
//! `1/n`, so each slot is replaced only `O(log n)` times; we pre-draw every
//! slot's next replacement position (`P[N > t | at n] = n/t ⇒ N = ⌈n/U⌉`)
//! and keep a min-heap of due positions, plus shared per-item suffix
//! counters, making updates `O(1)` amortised instead of the naive `O(t)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sss_codec::{
    put_packed_sorted_u64s, put_packed_u64s, put_varint_u64, put_varint_u64s, CodecError, Reader,
    WireCodec,
};
use sss_hash::{fp_hash_map, FpHashMap, RngCore64, SplitMix64, Xoshiro256pp};

use crate::misra_gries::MisraGries;

/// One reservoir slot: the held item and the suffix-counter offset such
/// that `r = tracker[item] − offset`.
#[derive(Debug, Clone, Copy)]
struct Slot {
    item: u64,
    offset: u64,
}

/// A bank of `t` independent size-1 position reservoirs with shared
/// suffix counters.
#[derive(Debug, Clone)]
struct SuffixReservoir {
    slots: Vec<Slot>,
    /// Min-heap of (next replacement position, slot index).
    due: BinaryHeap<Reverse<(u64, u32)>>,
    /// Occurrence counters for items currently held by ≥ 1 slot, counted
    /// from each item's first adoption.
    tracker: FpHashMap<u64, u64>,
    /// How many slots hold each tracked item (for tracker GC).
    holders: FpHashMap<u64, u32>,
    n: u64,
    rng: Xoshiro256pp,
}

impl SuffixReservoir {
    fn new(t: usize, seed: u64) -> Self {
        let mut due = BinaryHeap::with_capacity(t);
        for i in 0..t {
            due.push(Reverse((1, i as u32))); // every slot adopts position 1
        }
        Self {
            slots: vec![
                Slot {
                    item: u64::MAX,
                    offset: 0
                };
                t
            ],
            due,
            tracker: fp_hash_map(),
            holders: fp_hash_map(),
            n: 0,
            rng: Xoshiro256pp::new(seed),
        }
    }

    /// Replace the replacement-position RNG. Only meaningful before any
    /// updates: re-seeding mid-stream would bias the pre-drawn schedule.
    fn reseed_rng(&mut self, seed: u64) {
        debug_assert!(self.n == 0, "reseed_rng on a non-empty reservoir");
        self.rng = Xoshiro256pp::new(seed);
    }

    fn reset(&mut self) {
        let t = self.slots.len();
        self.due.clear();
        for i in 0..t {
            self.slots[i] = Slot {
                item: u64::MAX,
                offset: 0,
            };
            self.due.push(Reverse((self.n + 1, i as u32)));
        }
        self.tracker.clear();
        self.holders.clear();
    }

    #[inline]
    fn update(&mut self, x: u64) {
        self.n += 1;
        // Suffix counters for any slots already holding x.
        if let Some(c) = self.tracker.get_mut(&x) {
            *c += 1;
        }
        self.replace_due(x);
    }

    /// [`Self::update`] with the next replacement position cached in the
    /// caller's register, skipping the per-item heap peek. `next_due`
    /// must equal [`Self::peek_due`]; it is refreshed whenever the heap
    /// changes. Bit-identical to `update`.
    #[inline]
    fn update_cached(&mut self, x: u64, next_due: &mut u64) {
        self.n += 1;
        if let Some(c) = self.tracker.get_mut(&x) {
            *c += 1;
        }
        if *next_due == self.n {
            self.replace_due(x);
            *next_due = self.peek_due();
        }
    }

    /// The next pre-drawn replacement position (`u64::MAX` if none).
    #[inline]
    fn peek_due(&self) -> u64 {
        self.due.peek().map_or(u64::MAX, |&Reverse((p, _))| p)
    }

    /// Process every slot whose pre-drawn replacement position equals the
    /// current position: each adopts `x`.
    fn replace_due(&mut self, x: u64) {
        let n = self.n;
        while let Some(&Reverse((pos, idx))) = self.due.peek() {
            if pos != n {
                debug_assert!(pos > n, "missed replacement at {pos} < {n}");
                break;
            }
            self.due.pop();
            let slot = &mut self.slots[idx as usize];
            // Release the old item.
            if slot.item != u64::MAX {
                let h = self.holders.get_mut(&slot.item).expect("held item tracked");
                *h -= 1;
                if *h == 0 {
                    self.holders.remove(&slot.item);
                    self.tracker.remove(&slot.item);
                }
            }
            // Adopt x at this position (r starts at 1 = this occurrence).
            let c = *self.tracker.entry(x).or_insert(1);
            slot.item = x;
            slot.offset = c - 1;
            *self.holders.entry(x).or_insert(0) += 1;
            // Next replacement: P[N > t | at n] = n/t  ⇒  N = ⌈n/U⌉ > n.
            let u = self.rng.next_f64().max(1e-18);
            let next = (n as f64 / u).ceil();
            let next = if next.is_finite() && next < u64::MAX as f64 {
                (next as u64).max(n + 1)
            } else {
                u64::MAX
            };
            self.due.push(Reverse((next, idx)));
        }
    }

    /// Mean of the unbiased statistic `X(r)` over filled slots.
    fn mean_x(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let mut sum = 0.0;
        let mut filled = 0usize;
        for s in &self.slots {
            if s.item == u64::MAX {
                continue;
            }
            let r = self.tracker[&s.item] - s.offset;
            sum += x_statistic(r, n);
            filled += 1;
        }
        if filled == 0 {
            0.0
        } else {
            sum / filled as f64
        }
    }

    fn space_words(&self) -> usize {
        2 * self.slots.len() + self.due.len() + 2 * (self.tracker.len() + self.holders.len())
    }
}

/// Streaming estimator of the empirical entropy `H(f)` in bits.
#[derive(Debug, Clone)]
pub struct EntropyEstimator {
    plain: SuffixReservoir,
    cond: SuffixReservoir,
    mg: MisraGries,
    n: u64,
    /// Length of the conditional (leader-free) stream since leader adoption.
    cond_n: u64,
    leader: Option<u64>,
}

/// Fraction of the stream a Misra–Gries candidate must hold before the
/// dominant-element correction kicks in.
const LEADER_SHARE: f64 = 0.5;

/// Leadership is re-evaluated every this many updates (the Misra–Gries
/// argmax costs a table scan; per-item granularity buys nothing).
const LEADER_REFRESH: u64 = 32;

impl EntropyEstimator {
    /// Estimator with `t` reservoir slots (per reservoir).
    pub fn new(t: usize, seed: u64) -> Self {
        assert!(t >= 1, "need at least one slot");
        let mut sm = SplitMix64::new(seed);
        Self {
            plain: SuffixReservoir::new(t, sm.derive()),
            cond: SuffixReservoir::new(t, sm.derive()),
            mg: MisraGries::new(128),
            n: 0,
            cond_n: 0,
            leader: None,
        }
    }

    /// Estimator sized for relative error `eps` at confidence `1 − delta`
    /// on streams of length up to `2^log2_n` with entropy `≥ 1` bit.
    pub fn with_error(eps: f64, delta: f64, log2_n: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let t = ((log2_n * log2_n) * (2.0 / delta).ln() / (eps * eps)).ceil() as usize;
        Self::new(t.max(16), seed)
    }

    /// Stream length ingested so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Re-seed the reservoirs' replacement randomness — the seed-splitting
    /// hook for sharded monitors, where each shard's reservoir should make
    /// independent sampling decisions. Entropy merges are length-weighted
    /// averages (no shared hash state), so re-seeding never breaks
    /// mergeability. Must be called before the first update.
    ///
    /// # Panics
    /// If elements were already ingested (debug builds).
    pub fn reseed(&mut self, seed: u64) {
        debug_assert!(self.n == 0, "reseed on a non-empty entropy estimator");
        let mut sm = SplitMix64::new(seed);
        self.plain.reseed_rng(sm.derive());
        self.cond.reseed_rng(sm.derive());
    }

    /// Space in 64-bit words (both reservoirs + the Misra–Gries table).
    pub fn space_words(&self) -> usize {
        self.plain.space_words() + self.cond.space_words() + 2 * 128
    }

    /// Ingest one occurrence of `x`.
    pub fn update(&mut self, x: u64) {
        self.n += 1;
        self.mg.update(x);
        self.plain.update(x);
        if self.n.is_multiple_of(LEADER_REFRESH) {
            self.refresh_leader();
        }
        if let Some(z) = self.leader {
            if x != z {
                self.cond_n += 1;
                self.cond.update(x);
            }
        }
    }

    /// Ingest a batch of occurrences — same state transitions as
    /// one-by-one [`Self::update`] calls (the replacement chain is
    /// inherently sequential), executed with cheaper bookkeeping:
    ///
    /// - Misra–Gries decrement-alls become a chunk-local *debt* counter
    ///   checked against a histogram of counter values, turning the
    ///   `O(k)` retain per cold item into `O(1)` array ops (counters are
    ///   materialized once per chunk);
    /// - the leader scan (`MisraGries::top`, an alloc + sort every
    ///   [`LEADER_REFRESH`] items) becomes an incrementally maintained
    ///   argmax — a uniform decrement preserves the ordering, so only
    ///   increments can move it;
    /// - the reservoirs' next replacement positions are cached in
    ///   registers instead of peeking the due-heap per item.
    pub fn update_batch(&mut self, xs: &[u64]) {
        for chunk in xs.chunks(1024) {
            self.update_chunk(chunk);
        }
    }

    fn update_chunk(&mut self, chunk: &[u64]) {
        use std::collections::hash_map::Entry;

        let k = self.mg.k;
        // Histogram of stored counter values that could reach zero this
        // chunk (debt grows by at most one per item, so larger counters
        // are untouchable and stay untracked).
        let hist_len = chunk.len() + 2;
        let mut hist = vec![0u32; hist_len];
        // Chunk-local debt: every counter's effective value is
        // `stored - debt`; entries with `stored <= debt` are dead (they
        // read as absent and are purged at chunk end).
        let mut debt: u64 = 0;
        let mut dead: usize = 0;
        let mut phys_len = self.mg.counters.len();
        // Incremental argmax over (stored, item). Stored-value ordering
        // among live entries is debt-invariant, and ties break like
        // `MisraGries::top`: largest count, then smallest item.
        let mut top: Option<(u64, u64)> = None;
        // One pass seeds both the histogram and the argmax.
        for (&i, &c) in &self.mg.counters {
            if (c as usize) < hist_len {
                hist[c as usize] += 1;
            }
            match top {
                Some((ti, tc)) if c < tc || (c == tc && i > ti) => {}
                _ => top = Some((i, c)),
            }
        }
        let bump_top = |top: &mut Option<(u64, u64)>, i: u64, c: u64| match *top {
            Some((ti, tc)) if c < tc || (c == tc && i > ti) => {}
            _ => *top = Some((i, c)),
        };
        let mut plain_due = self.plain.peek_due();
        let mut cond_due = self.cond.peek_due();

        for &x in chunk {
            self.n += 1;
            // Misra–Gries step (same transitions as `MisraGries::update`).
            self.mg.n += 1;
            match self.mg.counters.entry(x) {
                Entry::Occupied(mut e) => {
                    let c = e.get_mut();
                    if *c > debt {
                        // Live hit: increment.
                        let old = *c as usize;
                        *c += 1;
                        if old < hist_len {
                            hist[old] -= 1;
                            if old + 1 < hist_len {
                                hist[old + 1] += 1;
                            }
                        }
                        bump_top(&mut top, x, *c);
                    } else if phys_len - dead < k {
                        // Dead entry, room in the table: same as a fresh
                        // insert at effective count 1, reusing the slot.
                        *c = debt + 1;
                        dead -= 1;
                        hist[(debt + 1) as usize] += 1;
                        bump_top(&mut top, x, debt + 1);
                    } else {
                        // Decrement-all: entries at effective 1 die.
                        debt += 1;
                        dead += hist[debt as usize] as usize;
                    }
                }
                Entry::Vacant(v) => {
                    if phys_len - dead < k {
                        v.insert(debt + 1);
                        phys_len += 1;
                        hist[(debt + 1) as usize] += 1;
                        bump_top(&mut top, x, debt + 1);
                    } else {
                        debt += 1;
                        dead += hist[debt as usize] as usize;
                    }
                }
            }
            // Plain reservoir.
            self.plain.update_cached(x, &mut plain_due);
            // Leader refresh on the same cadence as the scalar path.
            if self.n.is_multiple_of(LEADER_REFRESH) {
                let candidate = match top {
                    Some((i, s)) if s > debt => {
                        let c = s - debt;
                        ((c as f64 + self.mg.error_bound()) >= LEADER_SHARE * self.n as f64)
                            .then_some((i, c))
                    }
                    _ => None,
                };
                self.apply_leader(candidate);
                // A leader change resets the conditional reservoir.
                cond_due = self.cond.peek_due();
            }
            // Conditional reservoir.
            if let Some(z) = self.leader {
                if x != z {
                    self.cond_n += 1;
                    self.cond.update_cached(x, &mut cond_due);
                }
            }
        }
        // Materialize the debt: identical contents to the scalar path's
        // eager per-event retain.
        if debt > 0 {
            self.mg.counters.retain(|_, c| {
                if *c > debt {
                    *c -= debt;
                    true
                } else {
                    false
                }
            });
        }
    }

    fn refresh_leader(&mut self) {
        let candidate = self
            .mg
            .top()
            .filter(|&(_, c)| (c as f64 + self.mg.error_bound()) >= LEADER_SHARE * self.n as f64);
        self.apply_leader(candidate);
    }

    fn apply_leader(&mut self, candidate: Option<(u64, u64)>) {
        match (self.leader, candidate) {
            (Some(z), Some((top, _))) if z == top => {}
            (_, Some((top, _))) => {
                // New (or first) leader: restart the conditional reservoir.
                self.leader = Some(top);
                self.cond_n = 0;
                self.cond.reset();
            }
            (Some(_), None) => {
                // Leader lost dominance; fall back to the plain estimator.
                self.leader = None;
                self.cond_n = 0;
                self.cond.reset();
            }
            (None, None) => {}
        }
    }

    /// The estimated share of the dominant element, if one is tracked.
    pub fn leader_share(&self) -> Option<(u64, f64)> {
        let z = self.leader?;
        // The Misra–Gries count underestimates by at most n/(k+1); split
        // the difference to centre the estimate.
        let est = self.mg.query(z) as f64 + self.mg.error_bound() / 2.0;
        Some((z, (est / self.n as f64).min(1.0)))
    }

    /// Estimate `H(f)` in bits (clamped to `[0, lg n]`).
    pub fn estimate(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let est = match self.leader_share() {
            Some((_, pz)) if pz >= LEADER_SHARE => {
                // Dominant-element decomposition (exact identity):
                // H = (1−p_z)·H(S¬z) + (1−p_z)·lg 1/(1−p_z) + p_z·lg 1/p_z.
                let q = (1.0 - pz).max(0.0);
                let mut h = pz * (1.0 / pz).log2();
                if q > 0.0 && self.cond_n > 0 {
                    let h_cond = self.cond.mean_x().max(0.0);
                    h += q * h_cond + q * (1.0 / q).log2();
                }
                h
            }
            _ => self.plain.mean_x(),
        };
        est.clamp(0.0, (self.n as f64).log2())
    }
}

impl WireCodec for SuffixReservoir {
    fn encode_into(&self, out: &mut Vec<u8>) {
        // v2 layout: every section is columnar and packed — slot items
        // (FoR; a reservoir full of u64::MAX sentinels is a width-0
        // run), slot offsets and due positions (small integers near the
        // replay position), tracker/holder maps as sorted-delta keys
        // plus packed value columns. Heap entries keep the heap's
        // internal order: re-heapifying a valid heap is the identity,
        // so the decoded reservoir replays bit for bit *and* re-encodes
        // byte-identically.
        put_varint_u64(out, self.slots.len() as u64);
        let items: Vec<u64> = self.slots.iter().map(|s| s.item).collect();
        let offsets: Vec<u64> = self.slots.iter().map(|s| s.offset).collect();
        put_packed_u64s(out, &items);
        put_packed_u64s(out, &offsets);
        let due_pos: Vec<u64> = self.due.iter().map(|&Reverse((pos, _))| pos).collect();
        let due_idx: Vec<u64> = self
            .due
            .iter()
            .map(|&Reverse((_, idx))| idx as u64)
            .collect();
        put_packed_u64s(out, &due_pos);
        put_packed_u64s(out, &due_idx);
        let mut rows: Vec<(u64, u64)> = self.tracker.iter().map(|(&i, &c)| (i, c)).collect();
        rows.sort_unstable();
        put_packed_sorted_u64s(out, &rows.iter().map(|&(i, _)| i).collect::<Vec<_>>());
        put_varint_u64s(out, &rows.iter().map(|&(_, c)| c).collect::<Vec<_>>());
        // Holders ship verbatim rather than being rebuilt from the slots:
        // a slot holding the literal item u64::MAX is indistinguishable
        // from an empty slot, so slot-side inference would reject (or
        // corrupt) honest states containing that id.
        let mut held: Vec<(u64, u32)> = self.holders.iter().map(|(&i, &h)| (i, h)).collect();
        held.sort_unstable();
        put_packed_sorted_u64s(out, &held.iter().map(|&(i, _)| i).collect::<Vec<_>>());
        put_varint_u64s(
            out,
            &held.iter().map(|&(_, h)| h as u64).collect::<Vec<_>>(),
        );
        put_varint_u64(out, self.n);
        self.rng.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        // Read the raw columns (layout differs per version), then run
        // the shared structural validation below.
        let (slots, raw_due, tracker_rows, holder_rows, n, rng);
        if r.v2() {
            // No per-slot byte floor here: packed columns can spend
            // well under a byte per slot. The count is only *compared*
            // against the column lengths (which carry their own
            // allocation guards), never allocated from.
            let slot_count = r.varint_u64()? as usize;
            if slot_count == 0 || slot_count > u32::MAX as usize {
                return Err(CodecError::Invalid {
                    what: "SuffixReservoir slot count outside 1..=u32::MAX",
                });
            }
            let items = r.packed_u64s()?;
            let offsets = r.packed_u64s()?;
            if items.len() != slot_count || offsets.len() != slot_count {
                return Err(CodecError::Invalid {
                    what: "SuffixReservoir slot column length mismatch",
                });
            }
            slots = items
                .into_iter()
                .zip(offsets)
                .map(|(item, offset)| Slot { item, offset })
                .collect::<Vec<_>>();
            let due_pos = r.packed_u64s()?;
            let due_idx = r.packed_u64s()?;
            if due_pos.len() != due_idx.len() {
                return Err(CodecError::Invalid {
                    what: "SuffixReservoir due column length mismatch",
                });
            }
            let mut d = Vec::with_capacity(due_pos.len());
            for (pos, idx) in due_pos.into_iter().zip(due_idx) {
                let idx = u32::try_from(idx).map_err(|_| CodecError::Invalid {
                    what: "SuffixReservoir due index above u32",
                })?;
                d.push((pos, idx));
            }
            raw_due = d;
            let t_items = r.packed_sorted_u64s()?;
            let t_counts = r.varint_u64s()?;
            if t_counts.len() != t_items.len() {
                return Err(CodecError::Invalid {
                    what: "SuffixReservoir tracker column length mismatch",
                });
            }
            tracker_rows = t_items.into_iter().zip(t_counts).collect::<Vec<_>>();
            let h_items = r.packed_sorted_u64s()?;
            let h_counts = r.varint_u64s()?;
            if h_counts.len() != h_items.len() {
                return Err(CodecError::Invalid {
                    what: "SuffixReservoir holder column length mismatch",
                });
            }
            let mut h = Vec::with_capacity(h_items.len());
            for (item, held) in h_items.into_iter().zip(h_counts) {
                let held = u32::try_from(held).map_err(|_| CodecError::Invalid {
                    what: "SuffixReservoir holder count above u32",
                })?;
                h.push((item, held));
            }
            holder_rows = h;
            n = r.varint_u64()?;
            rng = Xoshiro256pp::decode(r)?;
        } else {
            let slot_count = r.len_prefix(16)?;
            if slot_count == 0 || slot_count > u32::MAX as usize {
                return Err(CodecError::Invalid {
                    what: "SuffixReservoir slot count outside 1..=u32::MAX",
                });
            }
            let mut s = Vec::with_capacity(slot_count);
            for _ in 0..slot_count {
                s.push(Slot {
                    item: r.u64()?,
                    offset: r.u64()?,
                });
            }
            slots = s;
            let due_count = r.len_prefix(12)?;
            let mut d = Vec::with_capacity(due_count);
            for _ in 0..due_count {
                d.push((r.u64()?, r.u32()?));
            }
            raw_due = d;
            let tracker_count = r.len_prefix(16)?;
            let mut t = Vec::with_capacity(tracker_count);
            for _ in 0..tracker_count {
                t.push((r.u64()?, r.u64()?));
            }
            tracker_rows = t;
            let holder_count = r.len_prefix(12)?;
            let mut h = Vec::with_capacity(holder_count);
            for _ in 0..holder_count {
                h.push((r.u64()?, r.u32()?));
            }
            holder_rows = h;
            n = r.u64()?;
            rng = Xoshiro256pp::decode(r)?;
        }
        let slot_count = slots.len();
        if raw_due.len() != slot_count {
            return Err(CodecError::Invalid {
                what: "SuffixReservoir due-heap size != slot count",
            });
        }
        let mut due_entries = Vec::with_capacity(raw_due.len());
        let mut seen_idx = vec![false; slot_count];
        for (pos, idx) in raw_due {
            let slot = seen_idx.get_mut(idx as usize).ok_or(CodecError::Invalid {
                what: "SuffixReservoir due entry for unknown slot",
            })?;
            if std::mem::replace(slot, true) {
                return Err(CodecError::Invalid {
                    what: "SuffixReservoir duplicate due entry",
                });
            }
            due_entries.push(Reverse((pos, idx)));
        }
        let mut tracker: FpHashMap<u64, u64> = fp_hash_map();
        for (item, count) in tracker_rows {
            if count == 0 || tracker.insert(item, count).is_some() {
                return Err(CodecError::Invalid {
                    what: "SuffixReservoir tracker row invalid",
                });
            }
        }
        let mut holders: FpHashMap<u64, u32> = fp_hash_map();
        for (item, h) in holder_rows {
            if h == 0 || !tracker.contains_key(&item) || holders.insert(item, h).is_some() {
                return Err(CodecError::Invalid {
                    what: "SuffixReservoir holder row invalid",
                });
            }
        }
        // Cross-check slots against the maps so continued ingestion and
        // mean_x cannot hit a missing key or an underflowing suffix count:
        // every held (non-sentinel) item must be tracked with a count
        // ahead of the slot offset (r = count − offset ≥ 1) and must have
        // a holder entry covering each slot that shows it. (Slots whose
        // item is the u64::MAX sentinel are skipped: an empty slot and a
        // slot that adopted the literal id u64::MAX behave identically in
        // the live structure — neither is released or read.)
        if holders.len() != tracker.len() {
            return Err(CodecError::Invalid {
                what: "SuffixReservoir tracker/holder key sets differ",
            });
        }
        let mut shown: FpHashMap<u64, u32> = fp_hash_map();
        for s in &slots {
            if s.item == u64::MAX {
                continue;
            }
            match tracker.get(&s.item) {
                Some(&c) if s.offset < c => {}
                _ => {
                    return Err(CodecError::Invalid {
                        what: "SuffixReservoir slot inconsistent with tracker",
                    })
                }
            }
            *shown.entry(s.item).or_insert(0) += 1;
        }
        for (item, count) in &shown {
            if item != &u64::MAX && holders.get(item) != Some(count) {
                return Err(CodecError::Invalid {
                    what: "SuffixReservoir holder count does not match slots",
                });
            }
        }
        if holders
            .keys()
            .any(|i| *i != u64::MAX && !shown.contains_key(i))
        {
            return Err(CodecError::Invalid {
                what: "SuffixReservoir holder for an item no slot shows",
            });
        }
        // Due positions are strictly ahead of the replay position (the
        // update loop pops entries at pos == n+1 and debug-asserts the
        // rest are ahead).
        if due_entries.iter().any(|&Reverse((pos, _))| pos <= n) {
            return Err(CodecError::Invalid {
                what: "SuffixReservoir due position not ahead of n",
            });
        }
        Ok(SuffixReservoir {
            slots,
            due: BinaryHeap::from(due_entries),
            tracker,
            holders,
            n,
            rng,
        })
    }
}

impl WireCodec for EntropyEstimator {
    const WIRE_TAG: u16 = 0x020E;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.plain.encode_into(out);
        self.cond.encode_into(out);
        self.mg.encode_into(out);
        self.n.encode_into(out);
        self.cond_n.encode_into(out);
        self.leader.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(EntropyEstimator {
            plain: SuffixReservoir::decode(r)?,
            cond: SuffixReservoir::decode(r)?,
            mg: MisraGries::decode(r)?,
            n: r.u64()?,
            cond_n: r.u64()?,
            leader: Option::decode(r)?,
        })
    }
}

/// The unbiased per-slot statistic `X(r) = r·lg(n/r) − (r−1)·lg(n/(r−1))`.
fn x_statistic(r: u64, n: f64) -> f64 {
    debug_assert!(r >= 1);
    let r = r as f64;
    let first = r * (n / r).log2();
    if r <= 1.0 {
        first
    } else {
        first - (r - 1.0) * (n / (r - 1.0)).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_hash::{RngCore64, Xoshiro256pp};

    fn exact_entropy(stream: &[u64]) -> f64 {
        let mut m = std::collections::HashMap::new();
        for &x in stream {
            *m.entry(x).or_insert(0u64) += 1;
        }
        let n = stream.len() as f64;
        m.values()
            .map(|&f| (f as f64 / n) * (n / f as f64).log2())
            .sum()
    }

    #[test]
    fn x_statistic_telescopes_to_entropy() {
        // Direct check of unbiasedness on a small frequency vector:
        // Σ_i Σ_{j=1}^{f_i} X(j) = n·H.
        let freqs = [5u64, 3, 2];
        let n: u64 = freqs.iter().sum();
        let mut total = 0.0;
        for &f in &freqs {
            for j in 1..=f {
                total += x_statistic(j, n as f64);
            }
        }
        let h: f64 = freqs
            .iter()
            .map(|&f| (f as f64 / n as f64) * (n as f64 / f as f64).log2())
            .sum();
        assert!((total / n as f64 - h).abs() < 1e-12);
    }

    #[test]
    fn reservoir_matches_naive_replacement_chain() {
        // The skip-based reservoir must hold a uniform position: check the
        // inclusion probability of the first element across seeds.
        let n = 50u64;
        let trials = 4000u64;
        let mut first_held = 0u64;
        for seed in 0..trials {
            let mut r = SuffixReservoir::new(1, seed);
            for x in 0..n {
                r.update(1000 + x); // all distinct
            }
            // Slot holds the item adopted at its sampled position; since all
            // items are distinct, item == 1000 + pos.
            if r.slots[0].item == 1000 {
                first_held += 1;
            }
        }
        let rate = first_held as f64 / trials as f64;
        let expect = 1.0 / n as f64;
        assert!(
            (rate - expect).abs() < 0.01,
            "rate {rate} vs expect {expect}"
        );
    }

    #[test]
    fn suffix_counts_are_exact() {
        // Constant stream: the slot's r must equal (n − sampled_pos + 1).
        let mut r = SuffixReservoir::new(4, 9);
        for _ in 0..1000 {
            r.update(7);
        }
        for s in &r.slots {
            assert_eq!(s.item, 7);
            let rr = r.tracker[&7] - s.offset;
            assert!((1..=1000).contains(&rr));
        }
        // Σ X over a full pass telescopes; the mean is bounded by lg n.
        assert!(r.mean_x().abs() <= 1000f64.log2());
    }

    #[test]
    fn uniform_stream_entropy() {
        let mut rng = Xoshiro256pp::new(1);
        let stream: Vec<u64> = (0..60_000).map(|_| rng.next_below(256)).collect();
        let h = exact_entropy(&stream); // ≈ 8 bits
        let mut e = EntropyEstimator::new(3000, 2);
        for &x in &stream {
            e.update(x);
        }
        let est = e.estimate();
        assert!((est - h).abs() / h < 0.05, "est {est} vs {h}");
    }

    #[test]
    fn constant_stream_entropy_is_zero() {
        let mut e = EntropyEstimator::new(500, 3);
        for _ in 0..50_000 {
            e.update(7);
        }
        assert!(e.estimate() < 0.02, "est = {}", e.estimate());
    }

    #[test]
    fn dominated_stream_uses_correction() {
        // 90% one item, 10% uniform over 1024 — low but nonzero entropy.
        let mut rng = Xoshiro256pp::new(4);
        let stream: Vec<u64> = (0..80_000)
            .map(|_| {
                if rng.next_bool(0.9) {
                    1_000_000
                } else {
                    rng.next_below(1024)
                }
            })
            .collect();
        let h = exact_entropy(&stream);
        let mut e = EntropyEstimator::new(3000, 5);
        for &x in &stream {
            e.update(x);
        }
        let (z, share) = e.leader_share().expect("leader detected");
        assert_eq!(z, 1_000_000);
        assert!((share - 0.9).abs() < 0.05, "share = {share}");
        let est = e.estimate();
        assert!((est - h).abs() / h < 0.15, "est {est} vs {h}");
    }

    #[test]
    fn all_distinct_stream_has_lg_n_entropy() {
        let n = 16_384u64;
        let mut e = EntropyEstimator::new(1000, 6);
        for x in 0..n {
            e.update(x);
        }
        let est = e.estimate();
        // H = lg n = 14 exactly (every r = 1 ⇒ X = lg n, zero variance).
        assert!((est - 14.0).abs() < 1e-9, "est = {est}");
    }

    #[test]
    fn estimate_is_clamped_to_valid_range() {
        let mut e = EntropyEstimator::new(4, 7); // tiny: noisy
        let mut rng = Xoshiro256pp::new(8);
        for _ in 0..10_000 {
            e.update(rng.next_below(4));
        }
        let est = e.estimate();
        assert!(est >= 0.0 && est <= (10_000f64).log2());
    }

    #[test]
    fn empty_estimator_returns_zero() {
        let e = EntropyEstimator::new(10, 9);
        assert_eq!(e.estimate(), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let build = |seed| {
            let mut e = EntropyEstimator::new(100, seed);
            let mut rng = Xoshiro256pp::new(99);
            for _ in 0..5000 {
                e.update(rng.next_below(32));
            }
            e.estimate()
        };
        assert_eq!(build(1), build(1));
        assert_ne!(build(1), build(2));
    }

    // Batch-vs-scalar equivalence (MG debt-counter replay, leader
    // transitions, both reservoirs) is pinned by the shared battery in
    // tests/batch_equiv.rs (crate::equiv harness) on a leader-churning
    // stream; snapshot comparison covers every serialized field.

    #[test]
    fn two_point_distribution() {
        // H = 1 bit for a 50/50 stream over two items.
        let mut e = EntropyEstimator::new(2000, 10);
        for i in 0..40_000u64 {
            e.update(i % 2);
        }
        let est = e.estimate();
        assert!((est - 1.0).abs() < 0.05, "est = {est}");
    }

    #[test]
    fn with_error_sizing_scales() {
        let small = EntropyEstimator::with_error(0.2, 0.1, 20.0, 1);
        let large = EntropyEstimator::with_error(0.05, 0.1, 20.0, 1);
        assert!(large.space_words() > 10 * small.space_words());
    }

    #[test]
    fn leader_lost_falls_back_to_plain() {
        // First 60k items constant (leader forms), then 60k uniform over
        // 512 (leader loses dominance): final estimate must track the
        // overall entropy, not the stale decomposition.
        let mut e = EntropyEstimator::new(3000, 11);
        let mut stream = vec![7u64; 60_000];
        let mut rng = Xoshiro256pp::new(12);
        stream.extend((0..60_000).map(|_| 1000 + rng.next_below(512)));
        let h = exact_entropy(&stream);
        for &x in &stream {
            e.update(x);
        }
        let est = e.estimate();
        assert!((est - h).abs() / h < 0.2, "est {est} vs {h}");
    }
}
