//! Batch/scalar equivalence harness — test support, not sketch state.
//!
//! Every `update_batch` in the workspace promises *bitwise* the same
//! state as the equivalent sequence of per-item updates. This module is
//! the single assertion of that contract, shared by the `sss-sketch` and
//! `sss-core` equivalence batteries (`tests/batch_equiv.rs` in each):
//! for every seed and every chunk size, drive one copy scalar and one
//! copy chunked over the same stream, then require their observations to
//! match bit for bit *and* their encoded snapshots to match byte for
//! byte. Snapshot equality is the strong check — it covers every field
//! the wire format knows about, not just the headline estimate.

use sss_codec::WireCodec;

/// Stream seeds every equivalence check runs under.
pub const SEEDS: [u64; 2] = [3, 17];

/// Chunk sizes every equivalence check replays the stream with: the
/// degenerate chunk, the SWAR lane width, odd stragglers, a size just
/// off the internal `BATCH_CHUNK`, the exact `BATCH_CHUNK`, and one
/// spanning multiple internal chunks.
pub const CHUNK_SIZES: [usize; 7] = [1, 4, 7, 33, 1000, 1024, 4097];

/// Assert that chunked ingestion is indistinguishable from per-item
/// ingestion for `T`, over [`SEEDS`] × [`CHUNK_SIZES`].
///
/// * `stream` generates the input stream for a seed;
/// * `build` constructs the estimator for a seed;
/// * `scalar` applies one item the per-item way;
/// * `batch` applies one chunk the batched way;
/// * `observe` extracts the estimates/reports to compare bit-for-bit
///   (encoded snapshots are compared on top, unconditionally).
///
/// An empty batch is interleaved into every chunked run to pin that
/// `update_batch(&[])` is a no-op.
pub fn assert_batch_equals_scalar<T: WireCodec>(
    label: &str,
    stream: impl Fn(u64) -> Vec<u64>,
    build: impl Fn(u64) -> T,
    scalar: impl Fn(&mut T, u64),
    batch: impl Fn(&mut T, &[u64]),
    observe: impl Fn(&T) -> Vec<f64>,
) {
    for &seed in &SEEDS {
        let xs = stream(seed);
        assert!(!xs.is_empty(), "{label}: stream(seed {seed}) is empty");
        let mut reference = build(seed);
        for &x in &xs {
            scalar(&mut reference, x);
        }
        let want_obs: Vec<u64> = observe(&reference).iter().map(|v| v.to_bits()).collect();
        let mut want_bytes = Vec::new();
        reference.encode_into(&mut want_bytes);

        for &size in &CHUNK_SIZES {
            let mut candidate = build(seed);
            batch(&mut candidate, &[]);
            for chunk in xs.chunks(size) {
                batch(&mut candidate, chunk);
            }
            let got_obs: Vec<u64> = observe(&candidate).iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                got_obs, want_obs,
                "{label}: observations diverge (seed {seed}, chunk size {size})"
            );
            let mut got_bytes = Vec::new();
            candidate.encode_into(&mut got_bytes);
            if got_bytes != want_bytes {
                let at = got_bytes
                    .iter()
                    .zip(&want_bytes)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| got_bytes.len().min(want_bytes.len()));
                panic!(
                    "{label}: encoded snapshots diverge (seed {seed}, chunk size {size}): \
                     scalar {} B vs batch {} B, first difference at byte {at}",
                    want_bytes.len(),
                    got_bytes.len(),
                );
            }
        }
    }
}
