//! Candidate tracking: turning point-query sketches into heavy-hitter
//! *reporters*.
//!
//! A CountMin/CountSketch answers "how often did `x` appear?" but Theorems
//! 6 and 7 need the set `S` of `O(1/α)` heavy items. On insert-only streams
//! the standard construction tracks candidates online: after updating item
//! `x`, re-estimate it; if the estimate crosses the current threshold, admit
//! it to a bounded candidate table. At query time candidates are
//! re-estimated and filtered against the final threshold. Any item above
//! the *final* threshold must have crossed every intermediate threshold at
//! its last arrival (thresholds only grow), so recall is preserved.

use sss_codec::{put_packed_sorted_u64s, put_varint_u64, CodecError, Reader, WireCodec};
use sss_hash::{fp_hash_map, FpHashMap};

use crate::countmin::CountMin;
use crate::countsketch::CountSketch;

/// A bounded table of candidate heavy hitters keyed by estimated frequency.
#[derive(Debug, Clone)]
pub struct TopKTracker {
    cap: usize,
    est: FpHashMap<u64, f64>,
}

impl TopKTracker {
    /// Tracker retaining roughly the top `cap` candidates.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "capacity must be positive");
        Self {
            cap,
            est: fp_hash_map(),
        }
    }

    /// Insert or refresh a candidate with its current estimate. The table
    /// lazily prunes to the top `cap` whenever it doubles.
    pub fn offer(&mut self, item: u64, estimate: f64) {
        let _ = self.offer_pruned(item, estimate);
    }

    /// [`Self::offer`], reporting whether the insert triggered a prune —
    /// the signal the batch paths' offer coalescer needs to invalidate
    /// its membership cache.
    pub(crate) fn offer_pruned(&mut self, item: u64, estimate: f64) -> bool {
        self.est.insert(item, estimate);
        if self.est.len() >= 2 * self.cap {
            self.prune();
            true
        } else {
            false
        }
    }

    fn prune(&mut self) {
        let mut v: Vec<(u64, f64)> = self.est.iter().map(|(&i, &e)| (i, e)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(self.cap);
        self.est = v.into_iter().collect();
    }

    /// All current candidates (unpruned view), in ascending item order.
    ///
    /// The order is deliberately canonical, not the hash map's: merge
    /// paths re-offer candidate unions and can prune mid-union, so an
    /// order that depended on map history would make a deserialized
    /// tracker (same contents, different insertion history) diverge from
    /// the original on the next merge — breaking the wire contract that
    /// `decode(encode(x))` behaves identically.
    pub fn candidates(&self) -> impl Iterator<Item = u64> {
        let mut v: Vec<u64> = self.est.keys().copied().collect();
        v.sort_unstable();
        v.into_iter()
    }

    /// The pruning capacity (used by the atomic quiesce rebuild).
    pub(crate) fn cap(&self) -> usize {
        self.cap
    }

    /// Number of tracked candidates.
    pub fn len(&self) -> usize {
        self.est.len()
    }

    /// Whether no candidates are tracked.
    pub fn is_empty(&self) -> bool {
        self.est.is_empty()
    }
}

/// Batch-path write coalescer for [`TopKTracker`]: defers repeated offers
/// of items known to be in the table.
///
/// Correctness relies on two facts about the tracker. Offers of an
/// already-present item never change the table's size, so they can never
/// trigger a prune — between prunes only the *latest* estimate per item is
/// observable. And prunes are only triggered by offers of new items, which
/// this coalescer always forwards immediately (after flushing pending
/// values, so the table at prune time is exactly what the per-item path
/// would have seen). A prune evicts arbitrary items, so it clears the
/// membership cache. Net effect: identical tracker state to per-item
/// offers, with the hot repeated admissions costing an 8-entry linear
/// scan instead of a hash-map insert.
struct OfferCoalescer {
    items: [u64; 8],
    ests: [f64; 8],
    dirty: [bool; 8],
    len: usize,
}

impl OfferCoalescer {
    fn new() -> Self {
        Self {
            items: [0; 8],
            ests: [0.0; 8],
            dirty: [false; 8],
            len: 0,
        }
    }

    #[inline]
    fn offer(&mut self, tracker: &mut TopKTracker, x: u64, est: f64) {
        for j in 0..self.len {
            if self.items[j] == x {
                self.ests[j] = est;
                self.dirty[j] = true;
                return;
            }
        }
        // Unknown membership: materialize pending writes so the table is
        // in per-item-path state, then forward this offer for real.
        self.flush(tracker);
        if tracker.offer_pruned(x, est) {
            self.len = 0;
        } else if self.len < self.items.len() {
            self.items[self.len] = x;
            self.ests[self.len] = est;
            self.dirty[self.len] = false;
            self.len += 1;
        }
    }

    #[inline]
    fn flush(&mut self, tracker: &mut TopKTracker) {
        for j in 0..self.len {
            if self.dirty[j] {
                // Present item: no size change, so never a prune.
                tracker.offer(self.items[j], self.ests[j]);
                self.dirty[j] = false;
            }
        }
    }
}

/// CountMin-backed `F_1` heavy-hitter reporter: report every item whose
/// estimated frequency is at least `α·n`, with per-item `(1 ± ε·F_1/f)`
/// frequency estimates.
#[derive(Debug, Clone)]
pub struct CmHeavyHitters {
    cm: CountMin,
    tracker: TopKTracker,
    alpha: f64,
}

impl CmHeavyHitters {
    /// Reporter for the threshold `α·F_1` using a CountMin with point-query
    /// error `eps·F_1` and failure probability `delta`.
    pub fn new(alpha: f64, eps: f64, delta: f64, seed: u64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        let cap = (4.0 / alpha).ceil() as usize;
        Self {
            cm: CountMin::with_error(eps, delta, seed),
            tracker: TopKTracker::new(cap),
            alpha,
        }
    }

    /// The reporting fraction `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The backing sketch (shared with the atomic variant).
    pub(crate) fn cm(&self) -> &CountMin {
        &self.cm
    }

    /// The candidate table.
    pub(crate) fn tracker(&self) -> &TopKTracker {
        &self.tracker
    }

    /// Reassemble a reporter from raw parts — the atomic variant's
    /// quiesce path.
    pub(crate) fn from_parts(cm: CountMin, tracker: TopKTracker, alpha: f64) -> Self {
        Self { cm, tracker, alpha }
    }

    /// Stream length ingested.
    pub fn n(&self) -> u64 {
        self.cm.total()
    }

    /// Space in 64-bit words (sketch + candidate table).
    pub fn space_words(&self) -> usize {
        self.cm.space_words() + 2 * self.tracker.len()
    }

    /// Ingest one occurrence of `x`.
    pub fn update(&mut self, x: u64) {
        self.cm.update(x, 1);
        let est = self.cm.query(x);
        if (est as f64) >= self.alpha * self.cm.total() as f64 {
            self.tracker.offer(x, est as f64);
        }
    }

    /// Ingest a batch of occurrences — same candidate admissions, bit for
    /// bit, as the per-item path. The sketch's fused batch kernel hashes
    /// every item once and streams each item's post-update estimate through
    /// the admission check inline; the threshold replays the per-item
    /// stream length, so offers happen in the same order at the same
    /// values.
    pub fn update_batch(&mut self, xs: &[u64]) {
        let Self { cm, tracker, alpha } = self;
        let alpha = *alpha;
        let mut pending = OfferCoalescer::new();
        cm.update_batch_fold(xs, |x, n_after, est| {
            if (est as f64) >= alpha * n_after as f64 {
                pending.offer(tracker, x, est as f64);
            }
        });
        pending.flush(tracker);
    }

    /// Merge another reporter with the same parameters and sketch seed:
    /// counter-wise CountMin merge, then the candidate union re-estimated
    /// against the merged sketch. *Both* sides' candidates are re-offered
    /// at their post-merge estimates — leaving the local side at its stale
    /// shard-sized values would let the tracker's capacity pruning evict a
    /// union-heavy item.
    pub fn merge(&mut self, other: &CmHeavyHitters) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-15,
            "alpha mismatch: {} vs {}",
            self.alpha,
            other.alpha
        );
        self.cm.merge(&other.cm);
        let union: Vec<u64> = self
            .tracker
            .candidates()
            .chain(other.tracker.candidates())
            .collect();
        for item in union {
            self.tracker.offer(item, self.cm.query(item) as f64);
        }
    }

    /// Report `(item, estimated frequency)` for every candidate whose final
    /// estimate is at least `α·n`, sorted by decreasing estimate.
    pub fn report(&self) -> Vec<(u64, u64)> {
        let threshold = self.alpha * self.cm.total() as f64;
        let mut out: Vec<(u64, u64)> = self
            .tracker
            .candidates()
            .map(|i| (i, self.cm.query(i)))
            .filter(|&(_, e)| e as f64 >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// Misra–Gries-backed `F_1` heavy-hitter reporter — the deterministic
/// insert-only alternative the paper names alongside CountMin (§6). Holds
/// `k = ⌈2/(ε·α)⌉` counters so every `α`-heavy item survives with count
/// error below `ε·α·n`; estimates are one-sided (under-counts), so recall
/// filtering uses the `count + n/(k+1)` upper bound.
#[derive(Debug, Clone)]
pub struct MgHeavyHitters {
    mg: crate::misra_gries::MisraGries,
    alpha: f64,
    k: usize,
}

impl MgHeavyHitters {
    /// Reporter for the threshold `α·F_1` with relative frequency error
    /// `eps` on reported items.
    pub fn new(alpha: f64, eps: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        let k = (2.0 / (eps * alpha)).ceil() as usize;
        Self {
            mg: crate::misra_gries::MisraGries::new(k),
            alpha,
            k,
        }
    }

    /// The reporting fraction `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Stream length ingested.
    pub fn n(&self) -> u64 {
        self.mg.n()
    }

    /// Space in 64-bit words (two words per counter).
    pub fn space_words(&self) -> usize {
        2 * self.k
    }

    /// Ingest one occurrence of `x`.
    pub fn update(&mut self, x: u64) {
        self.mg.update(x);
    }

    /// Ingest a batch of occurrences.
    pub fn update_batch(&mut self, xs: &[u64]) {
        self.mg.update_batch(xs);
    }

    /// Merge another reporter with the same parameters (Misra–Gries
    /// mergeability).
    pub fn merge(&mut self, other: &MgHeavyHitters) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-15,
            "alpha mismatch: {} vs {}",
            self.alpha,
            other.alpha
        );
        self.mg.merge(&other.mg);
    }

    /// Report `(item, estimated frequency)` for every item whose frequency
    /// *could* reach `α·n` (count + deterministic error bound), sorted by
    /// decreasing estimate. The reported estimate is the bias-centred
    /// `count + bound/2`.
    pub fn report(&self) -> Vec<(u64, u64)> {
        let bound = self.mg.error_bound();
        let threshold = self.alpha * self.mg.n() as f64;
        let mut out: Vec<(u64, u64)> = self
            .mg
            .items()
            .into_iter()
            .filter(|&(_, c)| c as f64 + bound >= threshold)
            .map(|(i, c)| (i, c + (bound / 2.0) as u64))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// CountSketch-backed `F_2` heavy-hitter reporter: report every item whose
/// estimated frequency is at least `α·√F̂_2`.
#[derive(Debug, Clone)]
pub struct CsHeavyHitters {
    cs: CountSketch,
    tracker: TopKTracker,
    alpha: f64,
    /// Reusable buffers of post-update estimates and `F_2` snapshots from
    /// the batched sketch kernel; working memory only (excluded from the
    /// wire codec).
    ests: Vec<i64>,
    f2s: Vec<f64>,
}

impl CsHeavyHitters {
    /// Reporter for the threshold `α·√F_2` using a CountSketch with
    /// point-query error `eps·√F_2` and failure probability `delta`.
    pub fn new(alpha: f64, eps: f64, delta: f64, seed: u64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        // At most 1/α² items can be α-heavy in F_2; keep slack.
        let cap = (4.0 / (alpha * alpha)).ceil().min(1e6) as usize;
        Self {
            cs: CountSketch::with_error(eps, delta, seed),
            tracker: TopKTracker::new(cap),
            alpha,
            ests: Vec::new(),
            f2s: Vec::new(),
        }
    }

    /// The reporting fraction `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The backing sketch (shared with the atomic variant).
    pub(crate) fn cs(&self) -> &CountSketch {
        &self.cs
    }

    /// The candidate table.
    pub(crate) fn tracker(&self) -> &TopKTracker {
        &self.tracker
    }

    /// Reassemble a reporter from raw parts — the atomic variant's
    /// quiesce path.
    pub(crate) fn from_parts(cs: CountSketch, tracker: TopKTracker, alpha: f64) -> Self {
        Self {
            cs,
            tracker,
            alpha,
            ests: Vec::new(),
            f2s: Vec::new(),
        }
    }

    /// Stream length ingested.
    pub fn n(&self) -> u64 {
        self.cs.total()
    }

    /// Current `√F̂_2` threshold base.
    pub fn f2_sqrt(&self) -> f64 {
        self.cs.f2_estimate().sqrt()
    }

    /// Space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.cs.space_words() + 2 * self.tracker.len()
    }

    /// Ingest one occurrence of `x`.
    pub fn update(&mut self, x: u64) {
        self.cs.update(x, 1);
        let est = self.cs.query(x);
        if est as f64 >= self.alpha * self.f2_sqrt() {
            self.tracker.offer(x, est as f64);
        }
    }

    /// Ingest a batch of occurrences — same admissions, bit for bit, as
    /// the per-item path. The fused sketch kernel batches the hashing and
    /// reuses a scratch median for the per-item `F_2` threshold (the
    /// scalar path's per-item clone-and-sort was this reporter's dominant
    /// cost).
    pub fn update_batch(&mut self, xs: &[u64]) {
        let mut ests = std::mem::take(&mut self.ests);
        let mut f2s = std::mem::take(&mut self.f2s);
        self.cs.update_batch_admit(xs, &mut ests, &mut f2s);
        let mut pending = OfferCoalescer::new();
        for ((&x, &est), &f2) in xs.iter().zip(ests.iter()).zip(f2s.iter()) {
            if est as f64 >= self.alpha * f2.sqrt() {
                pending.offer(&mut self.tracker, x, est as f64);
            }
        }
        pending.flush(&mut self.tracker);
        self.ests = ests;
        self.f2s = f2s;
    }

    /// Merge another reporter with the same parameters and sketch seed.
    /// Both sides' candidates are re-offered at their post-merge
    /// estimates (see [`CmHeavyHitters::merge`]).
    pub fn merge(&mut self, other: &CsHeavyHitters) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-15,
            "alpha mismatch: {} vs {}",
            self.alpha,
            other.alpha
        );
        self.cs.merge(&other.cs);
        let union: Vec<u64> = self
            .tracker
            .candidates()
            .chain(other.tracker.candidates())
            .collect();
        for item in union {
            let est = self.cs.query(item);
            if est > 0 {
                self.tracker.offer(item, est as f64);
            }
        }
    }

    /// Report `(item, estimated frequency)` for candidates above the final
    /// `α·√F̂_2` threshold, sorted by decreasing estimate.
    pub fn report(&self) -> Vec<(u64, u64)> {
        let threshold = self.alpha * self.f2_sqrt();
        let mut out: Vec<(u64, u64)> = self
            .tracker
            .candidates()
            .map(|i| (i, self.cs.query(i).max(0) as u64))
            .filter(|&(_, e)| e as f64 >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

impl WireCodec for TopKTracker {
    const WIRE_TAG: u16 = 0x0208;

    fn encode_into(&self, out: &mut Vec<u8>) {
        // v2 layout: sorted-delta-packed candidate ids, then their
        // estimates as raw IEEE-754 bit patterns (floats do not pack).
        put_varint_u64(out, self.cap as u64);
        let mut rows: Vec<(u64, f64)> = self.est.iter().map(|(&i, &e)| (i, e)).collect();
        rows.sort_unstable_by_key(|&(i, _)| i);
        let items: Vec<u64> = rows.iter().map(|&(i, _)| i).collect();
        put_packed_sorted_u64s(out, &items);
        for &(_, e) in &rows {
            e.encode_into(out);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let (cap, items, ests);
        if r.v2() {
            cap = r.varint_u64()? as usize;
            if cap == 0 {
                return Err(CodecError::Invalid {
                    what: "TopKTracker capacity == 0",
                });
            }
            items = r.packed_sorted_u64s()?;
            let mut es = Vec::with_capacity(items.len());
            for _ in 0..items.len() {
                es.push(r.f64()?);
            }
            ests = es;
        } else {
            cap = usize::decode(r)?;
            if cap == 0 {
                return Err(CodecError::Invalid {
                    what: "TopKTracker capacity == 0",
                });
            }
            let len = r.len_prefix(16)?;
            let mut is = Vec::with_capacity(len);
            let mut es = Vec::with_capacity(len);
            for _ in 0..len {
                is.push(r.u64()?);
                es.push(r.f64()?);
            }
            items = is;
            ests = es;
        }
        if items.len() >= cap.saturating_mul(2) {
            return Err(CodecError::Invalid {
                what: "TopKTracker exceeds its pruning bound",
            });
        }
        let mut est = fp_hash_map();
        for (item, e) in items.into_iter().zip(ests) {
            if est.insert(item, e).is_some() {
                return Err(CodecError::Invalid {
                    what: "TopKTracker duplicate item",
                });
            }
        }
        Ok(TopKTracker { cap, est })
    }
}

/// Shared payload shape of the sketch-backed heavy-hitter reporters:
/// `alpha ‖ sketch ‖ tracker`.
fn decode_alpha(r: &mut Reader) -> Result<f64, CodecError> {
    r.prob_open()
}

impl WireCodec for CmHeavyHitters {
    const WIRE_TAG: u16 = 0x0209;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.alpha.encode_into(out);
        self.cm.encode_into(out);
        self.tracker.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let alpha = decode_alpha(r)?;
        let cm = CountMin::decode(r)?;
        let tracker = TopKTracker::decode(r)?;
        Ok(CmHeavyHitters { cm, tracker, alpha })
    }
}

impl WireCodec for MgHeavyHitters {
    const WIRE_TAG: u16 = 0x020A;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.alpha.encode_into(out);
        self.k.encode_into(out);
        self.mg.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let alpha = decode_alpha(r)?;
        let k = usize::decode(r)?;
        let mg = crate::misra_gries::MisraGries::decode(r)?;
        Ok(MgHeavyHitters { mg, alpha, k })
    }
}

impl WireCodec for CsHeavyHitters {
    const WIRE_TAG: u16 = 0x020B;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.alpha.encode_into(out);
        self.cs.encode_into(out);
        self.tracker.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let alpha = decode_alpha(r)?;
        let cs = CountSketch::decode(r)?;
        let tracker = TopKTracker::decode(r)?;
        Ok(CsHeavyHitters {
            cs,
            tracker,
            alpha,
            ests: Vec::new(),
            f2s: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_hash::{RngCore64, Xoshiro256pp};

    fn planted_stream(n: u64, heavies: &[u64], share: f64, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256pp::new(seed);
        (0..n)
            .map(|_| {
                if rng.next_bool(share) {
                    heavies[rng.next_below(heavies.len() as u64) as usize]
                } else {
                    1_000_000 + rng.next_below(500_000)
                }
            })
            .collect()
    }

    #[test]
    fn tracker_keeps_top_items() {
        let mut t = TopKTracker::new(3);
        for i in 0..100u64 {
            t.offer(i, i as f64);
        }
        let kept: Vec<u64> = t.candidates().collect();
        // After pruning, the heaviest recent items must survive.
        assert!(kept.contains(&99));
        assert!(kept.len() < 10);
    }

    #[test]
    fn cm_hh_finds_planted_heavies_no_false_positives() {
        let heavies = [3u64, 17, 99];
        let stream = planted_stream(200_000, &heavies, 0.6, 1);
        let mut hh = CmHeavyHitters::new(0.1, 0.01, 0.01, 2);
        for &x in &stream {
            hh.update(x);
        }
        let report = hh.report();
        let found: Vec<u64> = report.iter().map(|&(i, _)| i).collect();
        for &h in &heavies {
            assert!(found.contains(&h), "missing heavy {h}");
        }
        // Background items have share ≈ 0.4/500k each — far below α − ε.
        for &(i, _) in &report {
            assert!(heavies.contains(&i), "false positive {i}");
        }
    }

    #[test]
    fn cm_hh_estimates_are_close() {
        let heavies = [5u64];
        let stream = planted_stream(100_000, &heavies, 0.5, 3);
        let truth = stream.iter().filter(|&&x| x == 5).count() as f64;
        let mut hh = CmHeavyHitters::new(0.2, 0.005, 0.01, 4);
        for &x in &stream {
            hh.update(x);
        }
        let report = hh.report();
        assert_eq!(report[0].0, 5);
        let est = report[0].1 as f64;
        assert!(
            (est - truth).abs() / truth < 0.02,
            "est {est} truth {truth}"
        );
    }

    #[test]
    fn cs_hh_finds_f2_heavies() {
        // One item with f ≈ 3000 over n=100k background singletons:
        // F_2 ≈ 9e6 + 1e5 ⇒ √F_2 ≈ 3017, so the item is α-heavy for α=0.5
        // while every background item (f=1) is hopeless.
        let mut stream: Vec<u64> = (1_000_000..1_100_000u64).collect();
        stream.extend(std::iter::repeat_n(42u64, 3000));
        // Deterministic shuffle.
        let mut rng = Xoshiro256pp::new(5);
        for i in (1..stream.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            stream.swap(i, j);
        }
        let mut hh = CsHeavyHitters::new(0.5, 0.05, 0.01, 6);
        for &x in &stream {
            hh.update(x);
        }
        let report = hh.report();
        assert!(!report.is_empty(), "no heavy hitter found");
        assert_eq!(report[0].0, 42);
        let est = report[0].1 as f64;
        assert!((est - 3000.0).abs() / 3000.0 < 0.1, "est = {est}");
        for &(i, _) in &report {
            assert_eq!(i, 42, "false positive {i}");
        }
    }

    // Batch-vs-scalar equivalence of the heavy-hitter reporters
    // (including coalesced tracker offers) is pinned by the shared
    // battery in tests/batch_equiv.rs (crate::equiv harness).

    #[test]
    fn cs_hh_batch_finds_the_elephant() {
        let mut stream: Vec<u64> = (1_000_000..1_080_000u64).collect();
        stream.extend(std::iter::repeat_n(42u64, 3000));
        let mut rng = Xoshiro256pp::new(13);
        for i in (1..stream.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            stream.swap(i, j);
        }
        let mut bat = CsHeavyHitters::new(0.5, 0.05, 0.01, 14);
        for chunk in stream.chunks(4096) {
            bat.update_batch(chunk);
        }
        let report = bat.report();
        assert_eq!(report.first().map(|&(i, _)| i), Some(42));
    }

    #[test]
    fn hh_merge_equals_concatenation() {
        let heavies = [5u64, 23];
        let left = planted_stream(80_000, &heavies, 0.5, 15);
        let right = planted_stream(80_000, &heavies, 0.5, 16);
        // CountMin-backed: linear merge ⇒ identical to the whole-stream run.
        let mut a = CmHeavyHitters::new(0.1, 0.01, 0.01, 17);
        let mut b = CmHeavyHitters::new(0.1, 0.01, 0.01, 17);
        let mut whole = CmHeavyHitters::new(0.1, 0.01, 0.01, 17);
        for &x in &left {
            a.update(x);
            whole.update(x);
        }
        for &x in &right {
            b.update(x);
            whole.update(x);
        }
        a.merge(&b);
        assert_eq!(a.n(), whole.n());
        assert_eq!(a.report(), whole.report());
        // Misra–Gries-backed: merged report keeps every planted heavy.
        let mut ma = MgHeavyHitters::new(0.1, 0.2);
        let mut mb = MgHeavyHitters::new(0.1, 0.2);
        for &x in &left {
            ma.update(x);
        }
        for &x in &right {
            mb.update(x);
        }
        ma.merge(&mb);
        let found: Vec<u64> = ma.report().iter().map(|&(i, _)| i).collect();
        for &h in &heavies {
            assert!(found.contains(&h), "missing heavy {h} after merge");
        }
    }

    #[test]
    fn empty_reporters_report_nothing() {
        let hh = CmHeavyHitters::new(0.1, 0.1, 0.1, 7);
        assert!(hh.report().is_empty());
        let hh = CsHeavyHitters::new(0.1, 0.1, 0.1, 8);
        assert!(hh.report().is_empty());
        let hh = MgHeavyHitters::new(0.1, 0.1);
        assert!(hh.report().is_empty());
    }

    #[test]
    fn mg_hh_finds_planted_heavies() {
        let heavies = [3u64, 17, 99];
        let stream = planted_stream(200_000, &heavies, 0.6, 9);
        let mut hh = MgHeavyHitters::new(0.1, 0.2);
        for &x in &stream {
            hh.update(x);
        }
        let report = hh.report();
        let found: Vec<u64> = report.iter().map(|&(i, _)| i).collect();
        for &h in &heavies {
            assert!(found.contains(&h), "missing heavy {h}");
        }
        // Reported estimates within 20% of truth for the heavies.
        for &(i, est) in &report {
            if heavies.contains(&i) {
                let truth = stream.iter().filter(|&&x| x == i).count() as f64;
                assert!(
                    (est as f64 - truth).abs() / truth <= 0.2,
                    "item {i}: est {est} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn mg_hh_rejects_light_items() {
        // Uniform chaff only: nothing reaches the alpha threshold.
        let mut rng = Xoshiro256pp::new(10);
        let mut hh = MgHeavyHitters::new(0.05, 0.2);
        for _ in 0..100_000 {
            hh.update(rng.next_below(50_000));
        }
        assert!(hh.report().is_empty(), "false positives: {:?}", hh.report());
    }
}
