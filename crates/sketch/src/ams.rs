//! AMS tug-of-war `F_2` sketch (Alon, Matias & Szegedy, JCSS 1999).
//!
//! Each atomic estimator keeps `Z = Σ_x s(x)·f_x` for a 4-wise independent
//! sign `s`; `Z²` is an unbiased estimate of `F_2` with `Var[Z²] ≤ 2F_2²`.
//! Averaging `r` copies divides the variance by `r`; the median of `c`
//! averaged groups drives the failure probability down to `2^{−Ω(c)}`:
//! the standard `(1+ε, δ)` estimator with `r = O(1/ε²)`, `c = O(log 1/δ)`.
//!
//! This is the `F_2(L)` black box of the **Rusu–Dobra baseline** (§1.3):
//! estimate `F_2` of the sampled stream, then invert
//! `E[F_2(L)] = p²F_2(P) + p(1−p)F_1(P)`.

use sss_codec::{put_packed_i64s, put_varint_u64, CodecError, Reader, WireCodec};
use sss_hash::{reduce_inputs, FourWiseSign, SplitMix64};

use crate::batch::{BatchScratch, BATCH_CHUNK};

/// AMS `F_2` estimator: `groups × copies` atomic counters.
#[derive(Debug, Clone)]
pub struct AmsF2 {
    copies: usize,
    /// Z values, group-major: groups × copies.
    z: Vec<i64>,
    signs: Vec<FourWiseSign>,
    total: u64,
    /// The construction seed the sign family was derived from, when
    /// known. Snapshots then ship 8 bytes and regenerate the signs on
    /// decode (each sign is a 40-byte degree-3 polynomial — shipping
    /// them verbatim is what made the Rusu–Dobra wire image ~6× its
    /// in-memory state). `None` only for states decoded from version-1
    /// frames, which carried the signs explicitly and keep doing so.
    seed: Option<u64>,
    scratch: BatchScratch,
}

impl AmsF2 {
    /// Sketch with `groups` median groups of `copies` averaged estimators.
    pub fn new(groups: usize, copies: usize, seed: u64) -> Self {
        assert!(groups >= 1 && copies >= 1, "dimensions must be positive");
        let mut sm = SplitMix64::new(seed);
        let n = groups * copies;
        Self {
            copies,
            z: vec![0; n],
            signs: (0..n).map(|_| FourWiseSign::new(sm.derive())).collect(),
            total: 0,
            seed: Some(seed),
            scratch: BatchScratch::default(),
        }
    }

    /// Sketch sized for a `(1+eps, delta)` guarantee:
    /// `copies = ⌈8/eps²⌉`, `groups = ⌈2·ln(1/delta)⌉` (odd, ≥ 3).
    ///
    /// **Cost warning.** Classic AMS touches *every* counter on *every*
    /// update, so per-item time is `O(groups·copies) = O(ε⁻²·log 1/δ)` —
    /// that is the real price of the tug-of-war sketch and exactly why
    /// CountSketch's `O(d)`-per-update [`f2_estimate`] view
    /// ("fast AMS") exists. A `2^22`-counter cap guards against accidental
    /// quadratic blow-ups.
    ///
    /// [`f2_estimate`]: crate::countsketch::CountSketch::f2_estimate
    pub fn with_error(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let copies = (8.0 / (eps * eps)).ceil() as usize;
        let mut groups = (2.0 * (1.0 / delta).ln()).ceil().max(3.0) as usize;
        if groups.is_multiple_of(2) {
            groups += 1;
        }
        assert!(
            copies.saturating_mul(groups) <= (1 << 22),
            "AMS {groups}x{copies} exceeds the 2^22-counter safety cap"
        );
        Self::new(groups, copies, seed)
    }

    /// Number of median groups.
    pub fn groups(&self) -> usize {
        self.z.len() / self.copies
    }

    /// Estimators per group.
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// Space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.z.len()
    }

    /// Total weight inserted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw group-major Z counters (shared with the atomic variant).
    pub(crate) fn z(&self) -> &[i64] {
        &self.z
    }

    /// The sign family.
    pub(crate) fn signs(&self) -> &[FourWiseSign] {
        &self.signs
    }

    /// The construction seed, when known.
    pub(crate) fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// Reassemble a sketch from raw parts — the atomic variant's quiesce
    /// path.
    pub(crate) fn from_parts(
        copies: usize,
        z: Vec<i64>,
        signs: Vec<FourWiseSign>,
        total: u64,
        seed: Option<u64>,
    ) -> Self {
        debug_assert_eq!(z.len(), signs.len());
        debug_assert!(z.len().is_multiple_of(copies));
        Self {
            copies,
            z,
            signs,
            total,
            seed,
            scratch: BatchScratch::default(),
        }
    }

    /// Add `count` occurrences of `x` (negative allowed: linear sketch).
    pub fn update(&mut self, x: u64, count: i64) {
        self.total = self.total.wrapping_add(count.unsigned_abs());
        for (zi, sign) in self.z.iter_mut().zip(&self.signs) {
            *zi += sign.sign(x) * count;
        }
    }

    /// Add one occurrence each of a batch of items — bitwise the same
    /// counters as one-by-one updates.
    ///
    /// Counter-major pass: each chunk is reduced into the hash field once,
    /// then every estimator folds its chunk sign-sum in via the SWAR
    /// kernel, keeping that estimator's polynomial coefficients in
    /// registers for the whole chunk (integer adds commute, so the reorder
    /// is exact).
    pub fn update_batch(&mut self, xs: &[u64]) {
        let Self {
            z,
            signs,
            total,
            scratch,
            ..
        } = self;
        for chunk in xs.chunks(BATCH_CHUNK) {
            reduce_inputs(chunk, &mut scratch.xr);
            for (zi, sign) in z.iter_mut().zip(signs.iter()) {
                *zi += sign.sign_sum_batch(&scratch.xr);
            }
            *total = total.wrapping_add(chunk.len() as u64);
        }
    }

    /// The `(mean over copies, median over groups)` estimate of `F_2`.
    pub fn estimate(&self) -> f64 {
        let mut group_means: Vec<f64> = self
            .z
            .chunks_exact(self.copies)
            .map(|group| {
                group.iter().map(|&z| (z as f64) * (z as f64)).sum::<f64>() / self.copies as f64
            })
            .collect();
        group_means.sort_by(|a, b| a.total_cmp(b));
        let mid = group_means.len() / 2;
        if group_means.len() % 2 == 1 {
            group_means[mid]
        } else {
            (group_means[mid - 1] + group_means[mid]) / 2.0
        }
    }

    /// Merge another sketch with identical dimensions and seed.
    pub fn merge(&mut self, other: &AmsF2) {
        assert_eq!(self.copies, other.copies, "copies mismatch");
        assert_eq!(self.z.len(), other.z.len(), "groups mismatch");
        for (a, b) in self.z.iter_mut().zip(&other.z) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl WireCodec for AmsF2 {
    const WIRE_TAG: u16 = 0x0203;

    fn encode_into(&self, out: &mut Vec<u8>) {
        // v2 layout: `copies ‖ total ‖ packed z ‖ sign source`. When the
        // construction seed is known (every live constructor path) the
        // sign family ships as that one seed and is re-derived on decode
        // exactly as `new` derives it — bit-identical coefficients, so
        // merge compatibility and continued ingestion are unchanged.
        put_varint_u64(out, self.copies as u64);
        put_varint_u64(out, self.total);
        put_packed_i64s(out, &self.z);
        match self.seed {
            Some(seed) => {
                out.push(0);
                seed.encode_into(out);
            }
            None => {
                out.push(1);
                self.signs.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let (copies, z, signs, total, seed);
        if r.v2() {
            copies = r.varint_u64()? as usize;
            total = r.varint_u64()?;
            z = r.packed_i64s()?;
            match r.u8()? {
                0 => {
                    // Regenerating one 40-byte polynomial per counter
                    // from a few wire bytes needs its own allocation
                    // guard; 2^22 matches the constructor's safety cap.
                    if z.len() > (1 << 22) {
                        return Err(CodecError::Invalid {
                            what: "AmsF2 counter count above the 2^22 safety cap",
                        });
                    }
                    let s = r.u64()?;
                    let mut sm = SplitMix64::new(s);
                    signs = (0..z.len())
                        .map(|_| FourWiseSign::new(sm.derive()))
                        .collect();
                    seed = Some(s);
                }
                1 => {
                    signs = Vec::<FourWiseSign>::decode(r)?;
                    seed = None;
                }
                _ => {
                    return Err(CodecError::Invalid {
                        what: "AmsF2 sign-source byte not 0/1",
                    })
                }
            }
        } else {
            copies = usize::decode(r)?;
            z = Vec::<i64>::decode(r)?;
            signs = Vec::<FourWiseSign>::decode(r)?;
            total = r.u64()?;
            seed = None;
        }
        if copies == 0 || z.is_empty() {
            return Err(CodecError::Invalid {
                what: "AmsF2 empty dimensions",
            });
        }
        if z.len() != signs.len() || !z.len().is_multiple_of(copies) {
            return Err(CodecError::Invalid {
                what: "AmsF2 counter/sign layout mismatch",
            });
        }
        Ok(AmsF2 {
            copies,
            z,
            signs,
            total,
            seed,
            scratch: BatchScratch::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_hash::{RngCore64, Xoshiro256pp};

    fn exact_f2(stream: &[u64]) -> f64 {
        let mut m = std::collections::HashMap::new();
        for &x in stream {
            *m.entry(x).or_insert(0u64) += 1;
        }
        m.values().map(|&f| (f as f64) * (f as f64)).sum()
    }

    #[test]
    fn estimate_within_eps_on_uniform_stream() {
        let mut rng = Xoshiro256pp::new(1);
        let stream: Vec<u64> = (0..50_000).map(|_| rng.next_below(1000)).collect();
        let f2 = exact_f2(&stream);
        // Explicit dims: 7 groups × 128 copies ⇒ σ ≈ √(2/128) ≈ 12.5%/group.
        let mut ams = AmsF2::new(7, 128, 2);
        for &x in &stream {
            ams.update(x, 1);
        }
        let est = ams.estimate();
        assert!((est - f2).abs() / f2 < 0.15, "est {est} vs {f2}");
    }

    #[test]
    fn estimate_within_eps_on_skewed_stream() {
        let mut rng = Xoshiro256pp::new(3);
        let stream: Vec<u64> = (0..50_000)
            .map(|_| {
                if rng.next_bool(0.4) {
                    rng.next_below(3)
                } else {
                    3 + rng.next_below(100_000)
                }
            })
            .collect();
        let f2 = exact_f2(&stream);
        let mut ams = AmsF2::new(7, 128, 4);
        for &x in &stream {
            ams.update(x, 1);
        }
        let est = ams.estimate();
        assert!((est - f2).abs() / f2 < 0.15, "est {est} vs {f2}");
    }

    #[test]
    fn with_error_dimensions_and_cap() {
        let ams = AmsF2::with_error(0.2, 0.1, 1);
        assert!(ams.copies() >= 200);
        assert_eq!(ams.groups() % 2, 1);
    }

    #[test]
    #[should_panic(expected = "safety cap")]
    fn with_error_rejects_absurd_dimensions() {
        let _ = AmsF2::with_error(0.001, 0.001, 1);
    }

    #[test]
    fn single_estimator_is_unbiased() {
        // Mean of Z² across seeds ≈ F_2.
        let stream: Vec<u64> = (0..200u64).collect(); // all distinct: F2 = 200
        let trials = 500;
        let mut sum = 0.0;
        for seed in 0..trials {
            let mut ams = AmsF2::new(1, 1, seed);
            for &x in &stream {
                ams.update(x, 1);
            }
            sum += ams.estimate();
        }
        let mean = sum / trials as f64;
        assert!((mean - 200.0).abs() < 30.0, "mean = {mean}");
    }

    #[test]
    fn deletions_cancel() {
        let mut ams = AmsF2::new(3, 16, 5);
        for x in 0..50u64 {
            ams.update(x, 7);
        }
        for x in 0..50u64 {
            ams.update(x, -7);
        }
        assert_eq!(ams.estimate(), 0.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = AmsF2::new(3, 8, 6);
        let mut b = AmsF2::new(3, 8, 6);
        let mut whole = AmsF2::new(3, 8, 6);
        for x in 0..500u64 {
            a.update(x % 13, 1);
            whole.update(x % 13, 1);
            b.update(x % 7, 1);
            whole.update(x % 7, 1);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), whole.estimate());
    }

    // Batch-vs-scalar equivalence is pinned by the shared battery in
    // tests/batch_equiv.rs (crate::equiv harness).

    #[test]
    fn constant_stream_exact_for_any_signs() {
        // One item: Z = ±n, Z² = n² = F2 exactly.
        let mut ams = AmsF2::new(5, 4, 7);
        for _ in 0..1000 {
            ams.update(42, 1);
        }
        assert_eq!(ams.estimate(), 1_000_000.0);
    }
}
