//! Bottom-k (KMV) distinct-count sketch (Bar-Yossef et al. 2002 /
//! Beyer et al. 2007 unbiased variant).
//!
//! Hash every item into `[0, 1)` (via a 64-bit hashed domain) and keep the
//! `k` smallest distinct hash values. If the k-th smallest is `v`, then
//! `F̂_0 = (k − 1)/v` is an unbiased estimate with relative standard
//! deviation `≈ 1/√(k−2)`. With `k = 16` this is already far inside the
//! `(1/2, δ)`-accuracy Algorithm 2 requires of its `F_0(L)` black box;
//! [`MedianF0`] median-boosts independent copies to drive `δ` down.

use std::collections::BTreeSet;

use sss_codec::{put_packed_sorted_u64s, put_varint_u64, CodecError, Reader, WireCodec};
use sss_hash::{PairwiseHash, SplitMix64};

/// Bottom-k distinct sketch.
///
/// ```
/// use sss_sketch::KmvSketch;
///
/// let mut kmv = KmvSketch::new(256, 1);
/// for x in 0..10_000u64 {
///     kmv.update(x % 5_000); // 5_000 distinct values, each twice
/// }
/// let est = kmv.estimate();
/// assert!((est - 5_000.0).abs() / 5_000.0 < 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct KmvSketch {
    k: usize,
    hash: PairwiseHash,
    /// The k smallest distinct hashed values seen so far (64-bit domain).
    smallest: BTreeSet<u64>,
}

impl KmvSketch {
    /// Sketch keeping the `k ≥ 3` smallest hash values.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 3, "k must be >= 3 for the unbiased estimator");
        Self {
            k,
            hash: PairwiseHash::new(seed),
            smallest: BTreeSet::new(),
        }
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.k
    }

    /// Ingest one occurrence of `x` (duplicates hash identically and are
    /// absorbed by the set — the sketch counts *distinct* items).
    pub fn update(&mut self, x: u64) {
        let h = sss_hash::fingerprint64(self.hash.hash(x));
        self.insert_hash(h);
    }

    /// Estimate the number of distinct items seen.
    pub fn estimate(&self) -> f64 {
        if self.smallest.len() < self.k {
            // Fewer than k distinct items: the set is exact.
            return self.smallest.len() as f64;
        }
        let kth = *self.smallest.iter().next_back().expect("non-empty") as f64;
        // Normalise the 64-bit domain to (0, 1].
        let v = (kth + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / v
    }

    /// Ingest a batch of occurrences (same result as one-by-one updates).
    ///
    /// Faster than the per-item path once the sketch is saturated: the
    /// rejection threshold (the current k-th smallest hash) is kept in a
    /// register across the batch, so the common case — an item hashing
    /// above it — costs a hash and a compare, with no tree access.
    pub fn update_batch(&mut self, xs: &[u64]) {
        let mut reduced = [0u64; 1024];
        for sub in xs.chunks(1024) {
            let red = &mut reduced[..sub.len()];
            for (r, &x) in red.iter_mut().zip(sub) {
                *r = PairwiseHash::reduce_input(x);
            }
            self.update_batch_prereduced(red);
        }
    }

    /// [`KmvSketch::update_batch`] over inputs already reduced into the
    /// hash field ([`PairwiseHash::reduce_input`]) — lets a bank of
    /// independent copies share the per-item domain reduction.
    fn update_batch_prereduced(&mut self, xrs: &[u64]) {
        debug_assert!(xrs.len() <= 1024, "callers chunk to <= 1024 items");
        let mut i = 0;
        while self.smallest.len() < self.k && i < xrs.len() {
            let h = sss_hash::fingerprint64(self.hash.hash_prereduced(xrs[i]));
            self.insert_hash(h);
            i += 1;
        }
        let rest = &xrs[i..];
        if rest.is_empty() {
            return;
        }
        // Saturated tail: fingerprint the whole sub-chunk through the
        // 4-lane SWAR kernel into a stack buffer, then scan in order with
        // the rejection threshold in a register — same values, same
        // insertion order as hashing one item at a time.
        let mut fps = [0u64; 1024];
        let fps = &mut fps[..rest.len()];
        self.hash.fingerprints_batch(rest, fps);
        let mut max = *self.smallest.iter().next_back().expect("saturated");
        for &h in fps.iter() {
            if h < max && self.smallest.insert(h) {
                self.smallest.remove(&max);
                max = *self.smallest.iter().next_back().expect("non-empty");
            }
        }
    }

    /// The insert step of [`KmvSketch::update`], on an already-computed
    /// hash value.
    #[inline]
    fn insert_hash(&mut self, h: u64) {
        if self.smallest.len() < self.k {
            self.smallest.insert(h);
        } else {
            let &max = self.smallest.iter().next_back().expect("non-empty");
            if h < max && self.smallest.insert(h) {
                self.smallest.remove(&max);
            }
        }
    }

    /// Merge another sketch with the same `k` and seed.
    pub fn merge(&mut self, other: &KmvSketch) {
        assert_eq!(self.k, other.k, "k mismatch");
        assert_eq!(self.hash, other.hash, "incompatible hash functions");
        for &h in &other.smallest {
            self.smallest.insert(h);
        }
        while self.smallest.len() > self.k {
            let &max = self.smallest.iter().next_back().expect("non-empty");
            self.smallest.remove(&max);
        }
    }
}

/// Median of independent [`KmvSketch`] copies: a `(1+ε, δ)` distinct-count
/// estimator with `copies = O(log 1/δ)`.
#[derive(Debug, Clone)]
pub struct MedianF0 {
    sketches: Vec<KmvSketch>,
}

impl MedianF0 {
    /// `copies` independent bottom-`k` sketches.
    pub fn new(k: usize, copies: usize, seed: u64) -> Self {
        assert!(copies >= 1);
        let mut sm = SplitMix64::new(seed);
        Self {
            sketches: (0..copies)
                .map(|_| KmvSketch::new(k, sm.derive()))
                .collect(),
        }
    }

    /// Sized for a `(1+eps, delta)` guarantee:
    /// `k = ⌈4/eps²⌉ + 2`, `copies = ⌈8·ln(1/delta)⌉` (odd).
    pub fn with_error(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        assert!(delta > 0.0 && delta < 1.0);
        let k = (4.0 / (eps * eps)).ceil() as usize + 2;
        let mut copies = (8.0 * (1.0 / delta).ln()).ceil().max(1.0) as usize;
        if copies.is_multiple_of(2) {
            copies += 1;
        }
        Self::new(k, copies, seed)
    }

    /// Ingest one occurrence of `x`.
    pub fn update(&mut self, x: u64) {
        for s in &mut self.sketches {
            s.update(x);
        }
    }

    /// Ingest a batch of occurrences. Iterates copy-major (each bottom-k
    /// sketch consumes a whole sub-chunk while its tree and rejection
    /// threshold stay hot) in L1-sized sub-chunks, with the per-item
    /// field reduction computed once and shared across all
    /// `O(log 1/δ)` copies.
    pub fn update_batch(&mut self, xs: &[u64]) {
        let mut reduced = [0u64; 1024];
        for sub in xs.chunks(1024) {
            let red = &mut reduced[..sub.len()];
            for (r, &x) in red.iter_mut().zip(sub) {
                *r = PairwiseHash::reduce_input(x);
            }
            for s in &mut self.sketches {
                s.update_batch_prereduced(red);
            }
        }
    }

    /// Median-of-copies distinct-count estimate.
    pub fn estimate(&self) -> f64 {
        let mut ests: Vec<f64> = self.sketches.iter().map(|s| s.estimate()).collect();
        ests.sort_by(|a, b| a.total_cmp(b));
        let mid = ests.len() / 2;
        if ests.len() % 2 == 1 {
            ests[mid]
        } else {
            (ests[mid - 1] + ests[mid]) / 2.0
        }
    }

    /// Merge another estimator built with the same `(k, copies, seed)`:
    /// the result summarises the union of both inputs.
    pub fn merge(&mut self, other: &MedianF0) {
        assert_eq!(self.sketches.len(), other.sketches.len(), "copies mismatch");
        for (a, b) in self.sketches.iter_mut().zip(&other.sketches) {
            a.merge(b);
        }
    }

    /// Space in 64-bit words.
    pub fn space_words(&self) -> usize {
        self.sketches.iter().map(|s| s.space_words()).sum()
    }
}

impl WireCodec for KmvSketch {
    const WIRE_TAG: u16 = 0x0201;
    // varint k ‖ PairwiseHash (len + 2 coeffs) ‖ packed-slice header —
    // the v2 lower bound, bounding the pre-allocation a corrupt
    // Vec<KmvSketch> length can request.
    const MIN_WIRE_BYTES: usize = 16;

    fn encode_into(&self, out: &mut Vec<u8>) {
        // v2 layout: the bottom-k values are the k smallest of a
        // uniform hash image, i.e. a strictly-increasing sequence with
        // small gaps — sorted-delta packing beats 8 bytes per value.
        put_varint_u64(out, self.k as u64);
        self.hash.encode_into(out);
        let vals: Vec<u64> = self.smallest.iter().copied().collect();
        put_packed_sorted_u64s(out, &vals);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let (k, hash, vals);
        if r.v2() {
            k = r.varint_u64()? as usize;
            if k < 3 {
                return Err(CodecError::Invalid {
                    what: "KmvSketch k < 3",
                });
            }
            hash = PairwiseHash::decode(r)?;
            // Strict monotonicity is enforced by the decoder, so the
            // values are unique by construction.
            vals = r.packed_sorted_u64s()?;
        } else {
            k = usize::decode(r)?;
            if k < 3 {
                return Err(CodecError::Invalid {
                    what: "KmvSketch k < 3",
                });
            }
            hash = PairwiseHash::decode(r)?;
            let len = r.len_prefix(8)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(r.u64()?);
            }
            vals = v;
        }
        if vals.len() > k {
            return Err(CodecError::Invalid {
                what: "KmvSketch holds more than k values",
            });
        }
        let mut smallest = BTreeSet::new();
        for h in vals {
            if !smallest.insert(h) {
                return Err(CodecError::Invalid {
                    what: "KmvSketch duplicate hash value",
                });
            }
        }
        Ok(KmvSketch { k, hash, smallest })
    }
}

impl WireCodec for MedianF0 {
    const WIRE_TAG: u16 = 0x0202;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.sketches.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let sketches: Vec<KmvSketch> = Vec::decode(r)?;
        if sketches.is_empty() {
            return Err(CodecError::Invalid {
                what: "MedianF0 with no copies",
            });
        }
        Ok(MedianF0 { sketches })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = KmvSketch::new(64, 1);
        for x in 0..40u64 {
            s.update(x);
            s.update(x); // duplicates ignored
        }
        assert_eq!(s.estimate(), 40.0);
    }

    #[test]
    fn estimate_concentrates() {
        let mut s = KmvSketch::new(1024, 2);
        let truth = 100_000u64;
        for x in 0..truth {
            s.update(x * 7 + 3);
        }
        let est = s.estimate();
        let rel = (est - truth as f64).abs() / truth as f64;
        // σ ≈ 1/√1022 ≈ 3.1%; allow 4σ.
        assert!(rel < 0.13, "rel err = {rel}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = KmvSketch::new(256, 3);
        for _ in 0..100 {
            for x in 0..1000u64 {
                s.update(x);
            }
        }
        let est = s.estimate();
        assert!((est - 1000.0).abs() / 1000.0 < 0.25, "est = {est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = KmvSketch::new(128, 4);
        let mut b = KmvSketch::new(128, 4);
        let mut u = KmvSketch::new(128, 4);
        for x in 0..5000u64 {
            a.update(x);
            u.update(x);
        }
        for x in 2500..7500u64 {
            b.update(x);
            u.update(x);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn median_f0_tighter_than_single() {
        let truth = 50_000u64;
        let mut worst_single = 0.0f64;
        for seed in 0..5u64 {
            let mut s = KmvSketch::new(66, seed);
            for x in 0..truth {
                s.update(x);
            }
            worst_single = worst_single.max((s.estimate() - truth as f64).abs() / truth as f64);
        }
        let mut m = MedianF0::new(66, 9, 77);
        for x in 0..truth {
            m.update(x);
        }
        let med_err = (m.estimate() - truth as f64).abs() / truth as f64;
        // Median of 9 should beat the worst of 5 singles almost surely.
        assert!(
            med_err <= worst_single + 0.02,
            "median {med_err} vs worst single {worst_single}"
        );
    }

    #[test]
    fn with_error_estimate_within_eps() {
        let mut m = MedianF0::with_error(0.25, 0.05, 5);
        let truth = 20_000u64;
        for x in 0..truth {
            m.update(x);
        }
        let rel = (m.estimate() - truth as f64).abs() / truth as f64;
        assert!(rel < 0.25, "rel = {rel}");
    }

    // Batch-vs-scalar equivalence is pinned by the shared battery in
    // tests/batch_equiv.rs (crate::equiv harness).

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = KmvSketch::new(16, 9);
        assert_eq!(s.estimate(), 0.0);
        let m = MedianF0::new(16, 3, 9);
        assert_eq!(m.estimate(), 0.0);
    }
}
