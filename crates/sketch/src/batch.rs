//! Shared plumbing for the structure-of-arrays batch ingestion paths.
//!
//! The batch `update_batch` implementations in this crate all follow the
//! same shape: reduce a bounded chunk of raw inputs into the hash field
//! once, evaluate each hash function over the whole chunk with the SWAR
//! kernels in `sss_hash::batch` into flat index/sign buffers, then sweep the
//! counter grid row-by-row (or item-by-item where admission order matters).
//! [`BatchScratch`] holds the intermediate buffers so a long-lived sketch
//! never reallocates them between batches; [`BATCH_CHUNK`] bounds them.
//!
//! Scratch is pure working memory: it never affects a sketch's logical
//! state, is excluded from the wire codecs, and clones as empty (so
//! snapshots and shard forks don't drag dead buffers along).

/// Maximum number of items processed per internal chunk of a batch pass.
/// Bounds scratch memory to a few KiB per buffer so the index/sign arrays
/// stay cache-resident while a row is swept.
pub(crate) const BATCH_CHUNK: usize = 1024;

/// Reusable per-sketch scratch for batch passes. Field use varies by
/// sketch; unused fields stay empty and cost nothing.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    /// Chunk inputs reduced into the hash field (`x mod (2^61 − 1)`).
    pub xr: Vec<u64>,
    /// Bucket indices; either one chunk's worth (row-major sweeps reuse it
    /// per row) or `depth × chunk` when a serial per-item pass needs every
    /// row's index at once.
    pub idx: Vec<usize>,
    /// `±1` signs, laid out like `idx`.
    pub signs: Vec<i64>,
    /// Per-item signed row values, for point-query medians.
    pub vals: Vec<i64>,
    /// Per-row sum-of-squares snapshot, for `F_2` medians.
    pub sumsq: Vec<u128>,
}

impl Clone for BatchScratch {
    /// Cloning a sketch (snapshots, shard forks) starts with empty scratch;
    /// buffers regrow lazily on the next batch.
    fn clone(&self) -> Self {
        Self::default()
    }
}
