//! Shared-atomic variants of the fixed-geometry grid substrates.
//!
//! `ShardedMonitor` scales cores by *replicating* sketch state per
//! worker and folding through the merge algebra — memory grows N× with
//! thread count. The types here take the other route (Confluo's
//! `substream_summary` shape): one shared counter grid whose cells many
//! ingest threads update concurrently with relaxed atomic adds. This is
//! sound for exactly the substrates whose merge is cell-wise integer
//! addition (CountMin, CountSketch, AMS tug-of-war): integer adds
//! commute and associate, so any interleaving of per-cell `fetch_add`s
//! quiesces to the same grid a sequential ingest of the same multiset
//! would produce — bit for bit. No cross-cell invariant holds *during*
//! ingestion, which is why conversion back to the plain types is only
//! offered as a quiesce step (`to_plain`), after every writer thread has
//! been joined: the join edge is the happens-before that makes the final
//! relaxed loads well-defined.
//!
//! Orderings are `Relaxed` throughout: each cell is an independent
//! commutative accumulator, the estimators' guarantees never depend on
//! cross-cell ordering, and the quiesce join provides the only
//! synchronization the conversion needs. The `atomic_ordering` lint rule
//! pins this: a stronger ordering on these hot paths is a bug unless a
//! pragma documents why.
//!
//! The one genuinely contended read-modify-write is CountSketch's live
//! per-row Σc² accumulator (needed by the F₂ heavy-hitter admission
//! threshold *during* ingestion): an `f64` carried as bits in an
//! `AtomicU64`, folded per chunk through a `compare_exchange_weak` loop.
//! Retries of that loop are the workload's real contention signal and
//! are counted per thread in [`AtomicScratch::cas_retries`] for the obs
//! layer to drain. The live value is approximate (f64 accumulation order
//! varies); the quiesced sketch recomputes the exact integer Σc² from
//! the final counters, the same way merge and decode already do.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use sss_hash::{reduce_inputs, FourWiseSign, PairwiseHash};

use crate::ams::AmsF2;
use crate::batch::BATCH_CHUNK;
use crate::countmin::CountMin;
use crate::countsketch::{median_i64, median_u128_as_f64, CountSketch};
use crate::topk::{CmHeavyHitters, CsHeavyHitters, TopKTracker};

/// Per-thread working buffers for the atomic batch kernels, plus the
/// thread's CAS-retry tally. One per ingest thread; never shared.
#[derive(Debug, Default)]
pub struct AtomicScratch {
    xr: Vec<u64>,
    idx: Vec<usize>,
    signs: Vec<i64>,
    vals: Vec<i64>,
    dsq: Vec<i128>,
    rows: Vec<u128>,
    admit: Vec<(u64, f64)>,
    /// `compare_exchange_weak` retries observed by this thread since the
    /// last [`Self::take_cas_retries`] — the contention counter the obs
    /// layer drains per job.
    cas_retries: u64,
}

impl AtomicScratch {
    /// Fresh scratch for one ingest thread.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain the thread's CAS-retry count (resets to zero).
    pub fn take_cas_retries(&mut self) -> u64 {
        std::mem::take(&mut self.cas_retries)
    }
}

/// Fold `delta` into an `f64`-carried-as-bits atomic accumulator with a
/// CAS loop, tallying retries into `retries`.
#[inline]
fn f64_fetch_add(cell: &AtomicU64, delta: f64, retries: &mut u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => {
                cur = actual;
                *retries += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// CountMin
// ---------------------------------------------------------------------

/// Shared-atomic [`CountMin`]: the same row-major d×w grid with
/// `AtomicU64` cells, updatable through `&self` from many threads.
#[derive(Debug)]
pub struct AtomicCountMin {
    width: usize,
    counters: Vec<AtomicU64>,
    hashes: Vec<PairwiseHash>,
    total: AtomicU64,
}

impl AtomicCountMin {
    /// Lift a plain sketch into shared-atomic form. Returns `None` for
    /// conservative-update sketches: their raise-to-max pass is
    /// item-serial and order-dependent, so concurrent updates would not
    /// quiesce to the sequential grid (they are not mergeable either).
    pub fn from_plain(cm: &CountMin) -> Option<Self> {
        if cm.is_conservative() {
            return None;
        }
        Some(Self {
            width: cm.width(),
            counters: cm.counters().iter().map(|&c| AtomicU64::new(c)).collect(),
            hashes: cm.hashes().to_vec(),
            total: AtomicU64::new(cm.total()),
        })
    }

    /// Total weight inserted so far (racy snapshot).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Add one occurrence each of a batch of items. Hashing runs through
    /// the same SWAR lane kernels as the single-writer batch path; the
    /// counter sweep is row-major relaxed `fetch_add`s.
    pub fn update_batch(&self, xs: &[u64], scratch: &mut AtomicScratch) {
        let w = self.width;
        for chunk in xs.chunks(BATCH_CHUNK) {
            let len = chunk.len();
            reduce_inputs(chunk, &mut scratch.xr);
            scratch.idx.resize(len, 0);
            for (r, h) in self.hashes.iter().enumerate() {
                h.hash_range_batch(&scratch.xr, w, &mut scratch.idx);
                let row = &self.counters[r * w..(r + 1) * w];
                for &b in &scratch.idx[..len] {
                    row[b].fetch_add(1, Ordering::Relaxed);
                }
            }
            self.total.fetch_add(len as u64, Ordering::Relaxed);
        }
    }

    /// Quiesce to a plain sketch. Callers must have joined every writer
    /// thread first; the relaxed loads then read the final grid.
    pub fn to_plain(&self) -> CountMin {
        CountMin::from_parts(
            self.width,
            self.counters
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            self.hashes.clone(),
            self.total.load(Ordering::Relaxed),
            false,
        )
    }
}

// ---------------------------------------------------------------------
// CountSketch
// ---------------------------------------------------------------------

/// Shared-atomic [`CountSketch`]: `AtomicI64` cells plus a live per-row
/// Σc² approximation (f64 bits in `AtomicU64`, CAS-accumulated) so the
/// F₂ admission threshold stays available during concurrent ingestion.
#[derive(Debug)]
pub struct AtomicCountSketch {
    width: usize,
    counters: Vec<AtomicI64>,
    bucket_hashes: Vec<PairwiseHash>,
    sign_hashes: Vec<FourWiseSign>,
    row_sumsq: Vec<AtomicU64>,
    total: AtomicU64,
}

impl AtomicCountSketch {
    /// Lift a plain sketch into shared-atomic form.
    pub fn from_plain(cs: &CountSketch) -> Self {
        Self {
            width: cs.width(),
            counters: cs.counters().iter().map(|&c| AtomicI64::new(c)).collect(),
            bucket_hashes: cs.bucket_hashes().to_vec(),
            sign_hashes: cs.sign_hashes().to_vec(),
            row_sumsq: cs
                .row_sumsq()
                .iter()
                .map(|&s| AtomicU64::new((s as f64).to_bits()))
                .collect(),
            total: AtomicU64::new(cs.total()),
        }
    }

    /// Total weight inserted so far (racy snapshot).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Live `F_2` estimate: median over rows of the approximate Σc²
    /// accumulators. Each per-cell `fetch_add` returns the old value, so
    /// per-thread `new² − old²` deltas telescope exactly over the
    /// per-cell modification order; only the f64 fold order varies, so
    /// this tracks the exact value to rounding.
    pub fn f2_estimate(&self, scratch: &mut AtomicScratch) -> f64 {
        scratch.rows.clear();
        scratch.rows.extend(
            self.row_sumsq
                .iter()
                .map(|s| f64::from_bits(s.load(Ordering::Relaxed)).max(0.0) as u128),
        );
        median_u128_as_f64(&mut scratch.rows)
    }

    /// Add one occurrence each of a batch of items. The per-row Σc²
    /// delta telescopes in a register `i128` per chunk and is folded
    /// into the shared accumulator once per row per chunk through the
    /// CAS loop (retries land in `scratch.cas_retries`).
    pub fn update_batch(&self, xs: &[u64], scratch: &mut AtomicScratch) {
        let w = self.width;
        let d = self.bucket_hashes.len();
        for chunk in xs.chunks(BATCH_CHUNK) {
            let len = chunk.len();
            reduce_inputs(chunk, &mut scratch.xr);
            scratch.idx.resize(len, 0);
            scratch.signs.resize(len, 0);
            for r in 0..d {
                self.bucket_hashes[r].hash_range_batch(&scratch.xr, w, &mut scratch.idx);
                self.sign_hashes[r].signs_batch(&scratch.xr, &mut scratch.signs);
                let row = &self.counters[r * w..(r + 1) * w];
                let mut dsq: i128 = 0;
                for i in 0..len {
                    let s = scratch.signs[i];
                    let old = row[scratch.idx[i]].fetch_add(s, Ordering::Relaxed);
                    let new = old + s;
                    dsq += (new as i128) * (new as i128) - (old as i128) * (old as i128);
                }
                f64_fetch_add(&self.row_sumsq[r], dsq as f64, &mut scratch.cas_retries);
            }
            self.total.fetch_add(len as u64, Ordering::Relaxed);
        }
    }

    /// Quiesce to a plain sketch: relaxed-load the final grid and
    /// recompute the exact integer Σc² from it (the same derived-state
    /// recompute merge and decode already perform).
    pub fn to_plain(&self) -> CountSketch {
        CountSketch::from_parts(
            self.width,
            self.counters
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            self.bucket_hashes.clone(),
            self.sign_hashes.clone(),
            self.total.load(Ordering::Relaxed),
        )
    }
}

// ---------------------------------------------------------------------
// AMS F2
// ---------------------------------------------------------------------

/// Shared-atomic [`AmsF2`]: the tug-of-war Z counters as `AtomicI64`.
/// Each chunk folds its SWAR sign-sum into every counter with one
/// relaxed `fetch_add` — the cheapest possible contention profile, since
/// writes are per-chunk, not per-item.
#[derive(Debug)]
pub struct AtomicAmsF2 {
    copies: usize,
    z: Vec<AtomicI64>,
    signs: Vec<FourWiseSign>,
    total: AtomicU64,
    seed: Option<u64>,
}

impl AtomicAmsF2 {
    /// Lift a plain sketch into shared-atomic form.
    pub fn from_plain(ams: &AmsF2) -> Self {
        Self {
            copies: ams.copies(),
            z: ams.z().iter().map(|&v| AtomicI64::new(v)).collect(),
            signs: ams.signs().to_vec(),
            total: AtomicU64::new(ams.total()),
            seed: ams.seed(),
        }
    }

    /// Total weight inserted so far (racy snapshot).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Add one occurrence each of a batch of items.
    pub fn update_batch(&self, xs: &[u64], scratch: &mut AtomicScratch) {
        for chunk in xs.chunks(BATCH_CHUNK) {
            reduce_inputs(chunk, &mut scratch.xr);
            for (zi, sign) in self.z.iter().zip(self.signs.iter()) {
                zi.fetch_add(sign.sign_sum_batch(&scratch.xr), Ordering::Relaxed);
            }
            self.total.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        }
    }

    /// Quiesce to a plain sketch (writers must be joined).
    pub fn to_plain(&self) -> AmsF2 {
        AmsF2::from_parts(
            self.copies,
            self.z.iter().map(|z| z.load(Ordering::Relaxed)).collect(),
            self.signs.clone(),
            self.total.load(Ordering::Relaxed),
            self.seed,
        )
    }
}

// ---------------------------------------------------------------------
// Heavy-hitter reporters over shared-atomic grids
// ---------------------------------------------------------------------

/// Shared-atomic [`CmHeavyHitters`]: the CountMin grid goes atomic; the
/// bounded candidate table stays behind a mutex taken once per admitted
/// batch, not per item. Admission under concurrency is racy — a thread's
/// post-update estimate may miss increments in flight on other threads —
/// but the reporter's recall argument survives: thresholds only grow,
/// admission errs toward *offering* (estimates lag at most the in-flight
/// window), and the final report threshold is evaluated against the
/// quiesced grid, which also restores exact precision filtering.
#[derive(Debug)]
pub struct AtomicCmHeavyHitters {
    cm: AtomicCountMin,
    tracker: Mutex<TopKTracker>,
    alpha: f64,
}

impl AtomicCmHeavyHitters {
    /// Lift a plain reporter into shared-atomic form (`None` if its
    /// sketch is conservative).
    pub fn from_plain(hh: &CmHeavyHitters) -> Option<Self> {
        Some(Self {
            cm: AtomicCountMin::from_plain(hh.cm())?,
            tracker: Mutex::new(hh.tracker().clone()),
            alpha: hh.alpha(),
        })
    }

    /// Ingest a batch: batch-hash every row, then an item-serial sweep
    /// of relaxed `fetch_add`s that tracks each item's post-update
    /// minimum for the admission check. Admitted candidates are queued
    /// in scratch and offered under one tracker lock per chunk.
    pub fn update_batch(&self, xs: &[u64], scratch: &mut AtomicScratch) {
        let w = self.cm.width;
        let d = self.cm.hashes.len();
        for chunk in xs.chunks(BATCH_CHUNK) {
            let len = chunk.len();
            reduce_inputs(chunk, &mut scratch.xr);
            scratch.idx.resize(d * len, 0);
            for (r, h) in self.cm.hashes.iter().enumerate() {
                h.hash_range_batch(&scratch.xr, w, &mut scratch.idx[r * len..(r + 1) * len]);
            }
            let base = self.cm.total.fetch_add(len as u64, Ordering::Relaxed);
            scratch.admit.clear();
            for (i, &x) in chunk.iter().enumerate() {
                let mut est = u64::MAX;
                for r in 0..d {
                    let old = self.cm.counters[r * w + scratch.idx[r * len + i]]
                        .fetch_add(1, Ordering::Relaxed);
                    est = est.min(old + 1);
                }
                let n_after = base + i as u64 + 1;
                if est as f64 >= self.alpha * n_after as f64 {
                    scratch.admit.push((x, est as f64));
                }
            }
            if !scratch.admit.is_empty() {
                let mut tracker = lock_tracker(&self.tracker);
                for &(x, est) in &scratch.admit {
                    tracker.offer(x, est);
                }
            }
        }
    }

    /// Quiesce to a plain reporter: convert the grid, then rebuild the
    /// candidate table by re-offering every candidate at its quiesced
    /// estimate — the same rebuild the merge path performs, so stale
    /// mid-race estimates cannot survive into reports.
    pub fn to_plain(&self) -> CmHeavyHitters {
        let cm = self.cm.to_plain();
        let src = lock_tracker(&self.tracker);
        let mut tracker = TopKTracker::new(src.cap());
        for item in src.candidates() {
            tracker.offer(item, cm.query(item) as f64);
        }
        CmHeavyHitters::from_parts(cm, tracker, self.alpha)
    }
}

/// Shared-atomic [`CsHeavyHitters`]. The admission threshold `α·√F̂₂`
/// is refreshed once per chunk from the live atomic Σc² accumulators
/// rather than per item: `F₂` only grows on insert-only streams, so a
/// chunk-stale threshold errs toward admitting — recall-safe — and the
/// report threshold is re-evaluated on the quiesced sketch.
#[derive(Debug)]
pub struct AtomicCsHeavyHitters {
    cs: AtomicCountSketch,
    tracker: Mutex<TopKTracker>,
    alpha: f64,
}

impl AtomicCsHeavyHitters {
    /// Lift a plain reporter into shared-atomic form.
    pub fn from_plain(hh: &CsHeavyHitters) -> Self {
        Self {
            cs: AtomicCountSketch::from_plain(hh.cs()),
            tracker: Mutex::new(hh.tracker().clone()),
            alpha: hh.alpha(),
        }
    }

    /// Ingest a batch: batch-hash buckets and signs for every row, then
    /// an item-serial sweep of relaxed `fetch_add`s that medians each
    /// item's post-update signed counters for the admission check.
    pub fn update_batch(&self, xs: &[u64], scratch: &mut AtomicScratch) {
        let w = self.cs.width;
        let d = self.cs.bucket_hashes.len();
        for chunk in xs.chunks(BATCH_CHUNK) {
            let len = chunk.len();
            let threshold = self.alpha * self.cs.f2_estimate(scratch).sqrt();
            reduce_inputs(chunk, &mut scratch.xr);
            scratch.idx.resize(d * len, 0);
            scratch.signs.resize(d * len, 0);
            for r in 0..d {
                self.cs.bucket_hashes[r].hash_range_batch(
                    &scratch.xr,
                    w,
                    &mut scratch.idx[r * len..(r + 1) * len],
                );
                self.cs.sign_hashes[r]
                    .signs_batch(&scratch.xr, &mut scratch.signs[r * len..(r + 1) * len]);
            }
            scratch.dsq.clear();
            scratch.dsq.resize(d, 0);
            scratch.admit.clear();
            for (i, &x) in chunk.iter().enumerate() {
                scratch.vals.clear();
                for r in 0..d {
                    let s = scratch.signs[r * len + i];
                    let old = self.cs.counters[r * w + scratch.idx[r * len + i]]
                        .fetch_add(s, Ordering::Relaxed);
                    let new = old + s;
                    scratch.dsq[r] += (new as i128) * (new as i128) - (old as i128) * (old as i128);
                    scratch.vals.push(s * new);
                }
                let est = median_i64(&mut scratch.vals);
                if est as f64 >= threshold {
                    scratch.admit.push((x, est as f64));
                }
            }
            for r in 0..d {
                f64_fetch_add(
                    &self.cs.row_sumsq[r],
                    scratch.dsq[r] as f64,
                    &mut scratch.cas_retries,
                );
            }
            self.cs.total.fetch_add(len as u64, Ordering::Relaxed);
            if !scratch.admit.is_empty() {
                let mut tracker = lock_tracker(&self.tracker);
                for &(x, est) in &scratch.admit {
                    tracker.offer(x, est);
                }
            }
        }
    }

    /// Quiesce to a plain reporter (see [`AtomicCmHeavyHitters::to_plain`];
    /// candidates whose quiesced estimate collapses to ≤ 0 are dropped,
    /// mirroring the merge path).
    pub fn to_plain(&self) -> CsHeavyHitters {
        let cs = self.cs.to_plain();
        let src = lock_tracker(&self.tracker);
        let mut tracker = TopKTracker::new(src.cap());
        for item in src.candidates() {
            let est = cs.query(item);
            if est > 0 {
                tracker.offer(item, est as f64);
            }
        }
        CsHeavyHitters::from_parts(cs, tracker, self.alpha)
    }
}

/// Take the candidate-table lock, shrugging off poison: the table only
/// ever holds admission hints that the quiesce rebuild re-estimates, so
/// state from a panicked peer is still safe to read or extend.
fn lock_tracker(m: &Mutex<TopKTracker>) -> std::sync::MutexGuard<'_, TopKTracker> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_codec::WireCodec;
    use sss_hash::{RngCore64, Xoshiro256pp};
    use std::sync::Arc;

    fn stream(n: u64, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256pp::new(seed);
        (0..n)
            .map(|_| {
                if rng.next_bool(0.3) {
                    rng.next_below(8)
                } else {
                    8 + rng.next_below(20_000)
                }
            })
            .collect()
    }

    fn encode<T: WireCodec>(t: &T) -> Vec<u8> {
        let mut out = Vec::new();
        t.encode_into(&mut out);
        out
    }

    #[test]
    fn countmin_single_thread_roundtrip_is_bitwise() {
        let xs = stream(20_000, 1);
        let mut plain = CountMin::new(4, 256, 2);
        plain.update_batch(&xs);
        let atomic = AtomicCountMin::from_plain(&CountMin::new(4, 256, 2)).unwrap();
        let mut scratch = AtomicScratch::new();
        atomic.update_batch(&xs, &mut scratch);
        assert_eq!(encode(&plain), encode(&atomic.to_plain()));
    }

    #[test]
    fn countmin_rejects_conservative() {
        assert!(AtomicCountMin::from_plain(&CountMin::new(2, 16, 1).conservative()).is_none());
    }

    #[test]
    fn countsketch_single_thread_roundtrip_is_bitwise() {
        let xs = stream(20_000, 3);
        let mut plain = CountSketch::new(5, 256, 4);
        plain.update_batch(&xs);
        let atomic = AtomicCountSketch::from_plain(&CountSketch::new(5, 256, 4));
        let mut scratch = AtomicScratch::new();
        atomic.update_batch(&xs, &mut scratch);
        let quiesced = atomic.to_plain();
        assert_eq!(encode(&plain), encode(&quiesced));
        // The quiesced Σc² is the exact recompute, not the f64 track.
        assert_eq!(plain.f2_estimate(), quiesced.f2_estimate());
    }

    #[test]
    fn ams_single_thread_roundtrip_is_bitwise() {
        let xs = stream(20_000, 5);
        let mut plain = AmsF2::new(5, 16, 6);
        plain.update_batch(&xs);
        let atomic = AtomicAmsF2::from_plain(&AmsF2::new(5, 16, 6));
        let mut scratch = AtomicScratch::new();
        atomic.update_batch(&xs, &mut scratch);
        assert_eq!(encode(&plain), encode(&atomic.to_plain()));
    }

    #[test]
    fn multithreaded_grids_quiesce_to_sequential_state() {
        let xs = stream(40_000, 7);
        let mut seq_cm = CountMin::new(4, 512, 8);
        seq_cm.update_batch(&xs);
        let mut seq_cs = CountSketch::new(5, 512, 9);
        seq_cs.update_batch(&xs);
        let mut seq_ams = AmsF2::new(5, 8, 10);
        seq_ams.update_batch(&xs);

        let cm = Arc::new(AtomicCountMin::from_plain(&CountMin::new(4, 512, 8)).unwrap());
        let cs = Arc::new(AtomicCountSketch::from_plain(&CountSketch::new(5, 512, 9)));
        let ams = Arc::new(AtomicAmsF2::from_plain(&AmsF2::new(5, 8, 10)));
        let threads = 4;
        let slices: Vec<Vec<u64>> = xs
            .chunks(xs.len().div_ceil(threads))
            .map(<[u64]>::to_vec)
            .collect();
        let handles: Vec<_> = slices
            .into_iter()
            .map(|slice| {
                let (cm, cs, ams) = (Arc::clone(&cm), Arc::clone(&cs), Arc::clone(&ams));
                std::thread::spawn(move || {
                    let mut scratch = AtomicScratch::new();
                    cm.update_batch(&slice, &mut scratch);
                    cs.update_batch(&slice, &mut scratch);
                    ams.update_batch(&slice, &mut scratch);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Integer adds commute: any interleaving quiesces to the
        // sequential grids bit for bit.
        assert_eq!(encode(&seq_cm), encode(&cm.to_plain()));
        assert_eq!(encode(&seq_cs), encode(&cs.to_plain()));
        assert_eq!(encode(&seq_ams), encode(&ams.to_plain()));
    }

    #[test]
    fn cm_hh_single_thread_matches_plain_reporter() {
        let mut xs = stream(30_000, 11);
        xs.extend(std::iter::repeat_n(3u64, 8000));
        let mut plain = CmHeavyHitters::new(0.1, 0.01, 0.01, 12);
        plain.update_batch(&xs);
        let atomic =
            AtomicCmHeavyHitters::from_plain(&CmHeavyHitters::new(0.1, 0.01, 0.01, 12)).unwrap();
        let mut scratch = AtomicScratch::new();
        atomic.update_batch(&xs, &mut scratch);
        assert_eq!(plain.report(), atomic.to_plain().report());
    }

    #[test]
    fn cs_hh_concurrent_finds_the_elephant() {
        let mut xs: Vec<u64> = (1_000_000..1_080_000u64).collect();
        xs.extend(std::iter::repeat_n(42u64, 3000));
        let mut rng = Xoshiro256pp::new(13);
        for i in (1..xs.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
        let hh = Arc::new(AtomicCsHeavyHitters::from_plain(&CsHeavyHitters::new(
            0.5, 0.05, 0.01, 14,
        )));
        let handles: Vec<_> = xs
            .chunks(xs.len().div_ceil(4))
            .map(<[u64]>::to_vec)
            .map(|slice| {
                let hh = Arc::clone(&hh);
                std::thread::spawn(move || {
                    let mut scratch = AtomicScratch::new();
                    hh.update_batch(&slice, &mut scratch);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let report = hh.to_plain().report();
        assert_eq!(report.first().map(|&(i, _)| i), Some(42));
    }

    #[test]
    fn cas_retry_counter_drains() {
        let cs = AtomicCountSketch::from_plain(&CountSketch::new(3, 64, 15));
        let mut scratch = AtomicScratch::new();
        cs.update_batch(&stream(5000, 16), &mut scratch);
        // Single-threaded: the CAS loop never loses a race.
        assert_eq!(scratch.take_cas_retries(), 0);
        assert_eq!(scratch.take_cas_retries(), 0);
    }
}
