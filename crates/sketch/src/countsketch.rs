//! CountSketch (Charikar, Chen & Farach-Colton, TCS 2004).
//!
//! `d` rows of `w` counters; row `r` adds `s_r(x)·count` to counter
//! `h_r(x)` where `s_r` is a 4-wise independent sign. The point query is
//! the median over rows of `s_r(x)·counter`: an *unbiased* estimate with
//! per-row standard deviation `≤ √(F_2/w)`, so
//!
//! `|f̂_x − f_x| ≤ √(8·F_2/w)` with probability `≥ 1 − 2^{−Ω(d)}`.
//!
//! This is the black box Theorem 7 runs on the sampled stream, and the
//! frequency-recovery primitive inside the Indyk–Woodruff level sets.
//! Each row additionally maintains its sum of squared counters
//! incrementally, giving an `O(d)` estimate of `F_2` itself (the classic
//! "fast AMS" view of CountSketch) — used both by the `F_2` heavy-hitter
//! threshold and the level-set bucket selection.

use sss_codec::{put_packed_i64s, put_varint_u64, CodecError, Reader, WireCodec};
use sss_hash::{reduce_inputs, FourWiseSign, PairwiseHash, SplitMix64};

use crate::batch::{BatchScratch, BATCH_CHUNK};

/// CountSketch over `u64` items with `i64` counters.
#[derive(Debug, Clone)]
pub struct CountSketch {
    width: usize,
    counters: Vec<i64>, // row-major: d × w
    bucket_hashes: Vec<PairwiseHash>,
    sign_hashes: Vec<FourWiseSign>,
    /// Per-row Σ counter² maintained incrementally (u128 to avoid overflow).
    row_sumsq: Vec<u128>,
    total: u64,
    scratch: BatchScratch,
}

impl CountSketch {
    /// Sketch with explicit dimensions: `depth` rows × `width` counters.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth >= 1 && width >= 1, "dimensions must be positive");
        let mut sm = SplitMix64::new(seed);
        Self {
            width,
            counters: vec![0; depth * width],
            bucket_hashes: (0..depth).map(|_| PairwiseHash::new(sm.derive())).collect(),
            sign_hashes: (0..depth).map(|_| FourWiseSign::new(sm.derive())).collect(),
            row_sumsq: vec![0; depth],
            total: 0,
            scratch: BatchScratch::default(),
        }
    }

    /// Sketch sized so point queries err by at most `eps·√F_2` with failure
    /// probability `delta`: `w = ⌈6/eps²⌉` (per-row Chebyshev at 2/3
    /// success), `d = ⌈2·ln(1/delta)⌉` rows (odd, ≥ 5) for the median
    /// boost.
    ///
    /// # Panics
    /// If the requested dimensions exceed `2^27` counters (1 GiB) — pick a
    /// larger `eps` or construct explicitly via [`CountSketch::new`].
    pub fn with_error(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let width = (6.0 / (eps * eps)).ceil() as usize;
        let mut depth = (2.0 * (1.0 / delta).ln()).ceil().max(5.0) as usize;
        if depth.is_multiple_of(2) {
            depth += 1; // odd depth makes the median well-defined
        }
        assert!(
            width.saturating_mul(depth) <= (1 << 27),
            "CountSketch {depth}x{width} exceeds the 2^27-counter safety cap"
        );
        Self::new(depth, width, seed)
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.bucket_hashes.len()
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total weight inserted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Space in 64-bit words (counters + per-row aggregates).
    pub fn space_words(&self) -> usize {
        self.counters.len() + 2 * self.row_sumsq.len()
    }

    /// Row bucket hashes (shared with the atomic variant).
    pub(crate) fn bucket_hashes(&self) -> &[PairwiseHash] {
        &self.bucket_hashes
    }

    /// Row sign hashes.
    pub(crate) fn sign_hashes(&self) -> &[FourWiseSign] {
        &self.sign_hashes
    }

    /// The raw row-major counter grid.
    pub(crate) fn counters(&self) -> &[i64] {
        &self.counters
    }

    /// Per-row Σc² aggregates.
    pub(crate) fn row_sumsq(&self) -> &[u128] {
        &self.row_sumsq
    }

    /// Reassemble a sketch from raw parts — the atomic variant's quiesce
    /// path. `row_sumsq` is derived state recomputed from the grid,
    /// exactly as merge and decode do.
    pub(crate) fn from_parts(
        width: usize,
        counters: Vec<i64>,
        bucket_hashes: Vec<PairwiseHash>,
        sign_hashes: Vec<FourWiseSign>,
        total: u64,
    ) -> Self {
        debug_assert_eq!(counters.len(), width * bucket_hashes.len());
        debug_assert_eq!(bucket_hashes.len(), sign_hashes.len());
        let row_sumsq: Vec<u128> = counters
            .chunks_exact(width)
            .map(|row| {
                row.iter()
                    .map(|&c| ((c as i128) * (c as i128)) as u128)
                    .sum()
            })
            .collect();
        Self {
            width,
            counters,
            bucket_hashes,
            sign_hashes,
            row_sumsq,
            total,
            scratch: BatchScratch::default(),
        }
    }

    /// Add `count` occurrences of `x` (use negative for deletions; the
    /// sketch is a linear map so turnstile updates are supported).
    pub fn update(&mut self, x: u64, count: i64) {
        self.total = self.total.wrapping_add(count.unsigned_abs());
        for r in 0..self.depth() {
            let b = self.bucket_hashes[r].hash_range(x, self.width);
            let s = self.sign_hashes[r].sign(x);
            let c = &mut self.counters[r * self.width + b];
            let old = *c;
            *c += s * count;
            // Incremental Σc²: new² − old².
            let old_sq = (old as i128) * (old as i128);
            let new_sq = (*c as i128) * (*c as i128);
            self.row_sumsq[r] = (self.row_sumsq[r] as i128 + (new_sq - old_sq)) as u128;
        }
    }

    /// Add one occurrence each of a batch of items — bitwise the same
    /// counters and row sums as one-by-one updates.
    ///
    /// Structure-of-arrays pass: each chunk is reduced into the hash field
    /// once, each row's bucket indices and signs come from the SWAR kernels
    /// into reusable scratch, and the grid is swept row-major. The per-row
    /// Σc² delta telescopes into a register `i128` and is folded in once at
    /// the end of the row — all exact integer arithmetic, so the reorder is
    /// bit-for-bit equal to the scalar path.
    pub fn update_batch(&mut self, xs: &[u64]) {
        let w = self.width;
        let d = self.bucket_hashes.len();
        let Self {
            counters,
            bucket_hashes,
            sign_hashes,
            row_sumsq,
            total,
            scratch,
            ..
        } = self;
        for chunk in xs.chunks(BATCH_CHUNK) {
            let len = chunk.len();
            reduce_inputs(chunk, &mut scratch.xr);
            scratch.idx.resize(len, 0);
            scratch.signs.resize(len, 0);
            for r in 0..d {
                bucket_hashes[r].hash_range_batch(&scratch.xr, w, &mut scratch.idx);
                sign_hashes[r].signs_batch(&scratch.xr, &mut scratch.signs);
                let row = &mut counters[r * w..(r + 1) * w];
                let mut dsq: i128 = 0;
                for i in 0..len {
                    let c = &mut row[scratch.idx[i]];
                    let old = *c;
                    let new = old + scratch.signs[i];
                    *c = new;
                    dsq += (new as i128) * (new as i128) - (old as i128) * (old as i128);
                }
                row_sumsq[r] = (row_sumsq[r] as i128 + dsq) as u128;
            }
            *total = total.wrapping_add(len as u64);
        }
    }

    /// Batch update (one occurrence per item) that also reports, for each
    /// item, the post-update point query and `F_2` estimate — exactly
    /// `update(x, 1)` then `query(x)` / `f2_estimate()`, with the hashing
    /// batched and the per-item median scratch reused instead of allocated.
    /// This is the `F_2` heavy-hitter admission kernel.
    pub(crate) fn update_batch_admit(
        &mut self,
        xs: &[u64],
        ests: &mut Vec<i64>,
        f2s: &mut Vec<f64>,
    ) {
        ests.clear();
        f2s.clear();
        let w = self.width;
        let d = self.bucket_hashes.len();
        let Self {
            counters,
            bucket_hashes,
            sign_hashes,
            row_sumsq,
            total,
            scratch,
            ..
        } = self;
        let BatchScratch {
            xr,
            idx,
            signs,
            vals,
            sumsq,
        } = scratch;
        for chunk in xs.chunks(BATCH_CHUNK) {
            let len = chunk.len();
            reduce_inputs(chunk, xr);
            idx.resize(d * len, 0);
            signs.resize(d * len, 0);
            for r in 0..d {
                bucket_hashes[r].hash_range_batch(xr, w, &mut idx[r * len..(r + 1) * len]);
                sign_hashes[r].signs_batch(xr, &mut signs[r * len..(r + 1) * len]);
            }
            // Item-serial: each item's estimate and F2 snapshot must see all
            // previous items' increments, exactly like the scalar path.
            for i in 0..len {
                vals.clear();
                for r in 0..d {
                    let s = signs[r * len + i];
                    let c = &mut counters[r * w + idx[r * len + i]];
                    let old = *c;
                    let new = old + s;
                    *c = new;
                    row_sumsq[r] = (row_sumsq[r] as i128
                        + ((new as i128) * (new as i128) - (old as i128) * (old as i128)))
                        as u128;
                    vals.push(s * new);
                }
                ests.push(median_i64(vals));
                sumsq.clear();
                sumsq.extend_from_slice(row_sumsq);
                f2s.push(median_u128_as_f64(sumsq));
            }
            *total = total.wrapping_add(len as u64);
        }
    }

    /// Point query: median over rows of the signed counter — an unbiased
    /// frequency estimate.
    pub fn query(&self, x: u64) -> i64 {
        let mut ests: Vec<i64> = (0..self.depth())
            .map(|r| {
                let b = self.bucket_hashes[r].hash_range(x, self.width);
                self.sign_hashes[r].sign(x) * self.counters[r * self.width + b]
            })
            .collect();
        median_i64(&mut ests)
    }

    /// Estimate `F_2` of the ingested stream: median over rows of Σc².
    /// Each row is an AMS-style unbiased estimator with relative standard
    /// deviation `√(2/w)`.
    pub fn f2_estimate(&self) -> f64 {
        let mut rows: Vec<u128> = self.row_sumsq.clone();
        median_u128_as_f64(&mut rows)
    }

    /// Merge another sketch with identical dimensions and seeds.
    pub fn merge(&mut self, other: &CountSketch) {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(
            self.bucket_hashes, other.bucket_hashes,
            "incompatible hash functions"
        );
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.total += other.total;
        // Recompute row sums (merging breaks the incremental identity).
        for r in 0..self.depth() {
            self.row_sumsq[r] = self.counters[r * self.width..(r + 1) * self.width]
                .iter()
                .map(|&c| ((c as i128) * (c as i128)) as u128)
                .sum();
        }
    }
}

impl WireCodec for CountSketch {
    const WIRE_TAG: u16 = 0x0205;

    fn encode_into(&self, out: &mut Vec<u8>) {
        // `row_sumsq` is derived state: recomputed on decode (exact
        // integer arithmetic, so it matches the incremental values
        // bit for bit) rather than trusted from the wire. v2 ships the
        // counter grid zigzag + FoR bit-packed — signed cell values sit
        // in a narrow band around zero, so this is where the multi-MiB
        // F2 heavy-hitter snapshots collapse.
        put_varint_u64(out, self.width as u64);
        put_packed_i64s(out, &self.counters);
        self.bucket_hashes.encode_into(out);
        self.sign_hashes.encode_into(out);
        put_varint_u64(out, self.total);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let (width, counters, bucket_hashes, sign_hashes, total);
        if r.v2() {
            width = r.varint_u64()? as usize;
            counters = r.packed_i64s()?;
            bucket_hashes = Vec::<PairwiseHash>::decode(r)?;
            sign_hashes = Vec::<FourWiseSign>::decode(r)?;
            total = r.varint_u64()?;
        } else {
            width = usize::decode(r)?;
            counters = Vec::<i64>::decode(r)?;
            bucket_hashes = Vec::<PairwiseHash>::decode(r)?;
            sign_hashes = Vec::<FourWiseSign>::decode(r)?;
            total = r.u64()?;
        }
        let depth = bucket_hashes.len();
        if width == 0
            || depth == 0
            || sign_hashes.len() != depth
            || width.checked_mul(depth) != Some(counters.len())
        {
            return Err(CodecError::Invalid {
                what: "CountSketch counter grid does not match depth x width",
            });
        }
        let row_sumsq: Vec<u128> = counters
            .chunks_exact(width)
            .map(|row| {
                row.iter()
                    .map(|&c| ((c as i128) * (c as i128)) as u128)
                    .sum()
            })
            .collect();
        Ok(CountSketch {
            width,
            counters,
            bucket_hashes,
            sign_hashes,
            row_sumsq,
            total,
            scratch: BatchScratch::default(),
        })
    }
}

/// Median of row aggregates, as `f64`: sorts in place, averages the two
/// central order statistics for even lengths. Shared by [`CountSketch::f2_estimate`]
/// and the batch admission kernel so both produce identical floats.
pub(crate) fn median_u128_as_f64(rows: &mut [u128]) -> f64 {
    rows.sort_unstable();
    let mid = rows.len() / 2;
    if rows.len() % 2 == 1 {
        rows[mid] as f64
    } else {
        (rows[mid - 1] as f64 + rows[mid] as f64) / 2.0
    }
}

pub(crate) fn median_i64(v: &mut [i64]) -> i64 {
    let mid = v.len() / 2;
    let (_, m, _) = v.select_nth_unstable(mid);
    let m = *m;
    if v.len() % 2 == 1 {
        m
    } else {
        let lower = v[..mid].iter().max().copied().unwrap_or(m);
        // Average of the two central order statistics, rounding toward zero.
        ((lower as i128 + m as i128) / 2) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_hash::{RngCore64, Xoshiro256pp};

    fn skewed_stream(n: u64, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256pp::new(seed);
        (0..n)
            .map(|_| {
                if rng.next_bool(0.3) {
                    rng.next_below(4) // 4 hot items
                } else {
                    4 + rng.next_below(5000)
                }
            })
            .collect()
    }

    #[test]
    fn point_query_error_within_f2_bound() {
        let stream = skewed_stream(100_000, 1);
        let mut cs = CountSketch::new(9, 1024, 2);
        let mut truth = std::collections::HashMap::new();
        let mut f2 = 0.0f64;
        for &x in &stream {
            cs.update(x, 1);
            let e = truth.entry(x).or_insert(0i64);
            f2 += 2.0 * *e as f64 + 1.0;
            *e += 1;
        }
        let bound = (8.0 * f2 / 1024.0).sqrt();
        let mut bad = 0;
        for (&x, &f) in &truth {
            if ((cs.query(x) - f).abs() as f64) > bound {
                bad += 1;
            }
        }
        assert!(bad <= truth.len() / 50, "bad = {bad}/{}", truth.len());
    }

    #[test]
    fn estimates_are_unbiased_across_seeds() {
        // Mean estimate of a fixed item over independent sketches ≈ truth.
        let stream = skewed_stream(20_000, 3);
        let truth = stream.iter().filter(|&&x| x == 0).count() as f64;
        let mut sum = 0.0;
        let trials = 60;
        for seed in 0..trials {
            let mut cs = CountSketch::new(1, 256, seed);
            for &x in &stream {
                cs.update(x, 1);
            }
            sum += cs.query(0) as f64;
        }
        let mean = sum / trials as f64;
        assert!(
            (mean - truth).abs() < 0.15 * truth,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn f2_estimate_tracks_truth() {
        let stream = skewed_stream(50_000, 5);
        let mut cs = CountSketch::new(9, 2048, 6);
        let mut truth = std::collections::HashMap::new();
        for &x in &stream {
            cs.update(x, 1);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        let f2: f64 = truth.values().map(|&f| (f as f64) * (f as f64)).sum();
        let est = cs.f2_estimate();
        assert!((est - f2).abs() / f2 < 0.1, "est {est} vs f2 {f2}");
    }

    #[test]
    fn incremental_sumsq_matches_recompute() {
        let mut cs = CountSketch::new(3, 64, 7);
        let stream = skewed_stream(5000, 8);
        for &x in &stream {
            cs.update(x, 1);
        }
        for r in 0..cs.depth() {
            let direct: u128 = cs.counters[r * cs.width..(r + 1) * cs.width]
                .iter()
                .map(|&c| ((c as i128) * (c as i128)) as u128)
                .sum();
            assert_eq!(cs.row_sumsq[r], direct, "row {r}");
        }
    }

    #[test]
    fn turnstile_deletion_cancels() {
        let mut cs = CountSketch::new(5, 128, 9);
        for x in 0..100u64 {
            cs.update(x, 5);
        }
        for x in 0..100u64 {
            cs.update(x, -5);
        }
        for x in 0..100u64 {
            assert_eq!(cs.query(x), 0);
        }
        assert_eq!(cs.f2_estimate(), 0.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = CountSketch::new(5, 256, 11);
        let mut b = CountSketch::new(5, 256, 11);
        let mut whole = CountSketch::new(5, 256, 11);
        for x in 0..2000u64 {
            a.update(x % 97, 1);
            whole.update(x % 97, 1);
            b.update(x % 31, 1);
            whole.update(x % 31, 1);
        }
        a.merge(&b);
        for x in 0..100u64 {
            assert_eq!(a.query(x), whole.query(x));
        }
        assert_eq!(a.f2_estimate(), whole.f2_estimate());
    }

    // Batch-vs-scalar equivalence is pinned by the shared battery in
    // tests/batch_equiv.rs (crate::equiv harness); `row_sumsq` is derived
    // state the codec recomputes on decode, so its incremental
    // maintenance through the batched path keeps a direct check here.
    #[test]
    fn batched_row_sumsq_stays_incremental() {
        let stream = skewed_stream(10_000, 21);
        let mut bat = CountSketch::new(5, 256, 22);
        for chunk in stream.chunks(401) {
            bat.update_batch(chunk);
        }
        for r in 0..bat.depth() {
            let direct: u128 = bat.counters[r * bat.width..(r + 1) * bat.width]
                .iter()
                .map(|&c| ((c as i128) * (c as i128)) as u128)
                .sum();
            assert_eq!(bat.row_sumsq[r], direct, "row {r}");
        }
    }

    #[test]
    fn median_helper() {
        let mut v = [3i64, 1, 2];
        assert_eq!(median_i64(&mut v), 2);
        let mut v = [4i64, 1, 3, 2];
        assert_eq!(median_i64(&mut v), 2); // (2+3)/2 rounded toward zero
        let mut v = [5i64];
        assert_eq!(median_i64(&mut v), 5);
        let mut v = [-5i64, -1, -3];
        assert_eq!(median_i64(&mut v), -3);
    }

    #[test]
    fn with_error_depth_is_odd() {
        let cs = CountSketch::with_error(0.1, 0.01, 1);
        assert_eq!(cs.depth() % 2, 1);
        assert!(cs.width() >= 600);
        assert!(cs.depth() >= 5);
    }

    #[test]
    #[should_panic(expected = "safety cap")]
    fn with_error_rejects_absurd_dimensions() {
        let _ = CountSketch::with_error(0.0001, 0.01, 1);
    }
}
