//! CountMin sketch (Cormode & Muthukrishnan, J. Algorithms 2005).
//!
//! `d` rows of `w` counters; row `r` adds each update to counter
//! `h_r(x)`, and a point query returns the minimum over rows. For an
//! insert-only stream the estimate `f̂_x` satisfies
//!
//! * `f̂_x ≥ f_x` always (one-sided error), and
//! * `f̂_x ≤ f_x + (e/w)·F_1` with probability `≥ 1 − e^{−d}` per query,
//!
//! which is the `(α′, ε′, δ′)` black box Theorem 6 runs on the sampled
//! stream. Rows use independent 2-wise polynomial hash functions, which the
//! original analysis requires.

use sss_codec::{put_packed_u64s, put_varint_u64, CodecError, Reader, WireCodec};
use sss_hash::{reduce_inputs, PairwiseHash, SplitMix64};

use crate::batch::{BatchScratch, BATCH_CHUNK};

/// CountMin sketch over `u64` items with `u64` counts.
///
/// ```
/// use sss_sketch::CountMin;
///
/// let mut cm = CountMin::with_error(0.01, 0.01, 42);
/// for _ in 0..100 {
///     cm.update(7, 1);
/// }
/// cm.update(8, 3);
/// assert!(cm.query(7) >= 100);                    // never underestimates
/// assert!(cm.query(7) <= 100 + cm.total() / 100); // ≤ f + ε·F1 w.h.p.
/// ```
#[derive(Debug, Clone)]
pub struct CountMin {
    width: usize,
    counters: Vec<u64>, // row-major: d × w
    hashes: Vec<PairwiseHash>,
    total: u64,
    conservative: bool,
    scratch: BatchScratch,
}

impl CountMin {
    /// Sketch with explicit dimensions: `depth` rows × `width` counters.
    pub fn new(depth: usize, width: usize, seed: u64) -> Self {
        assert!(depth >= 1 && width >= 1, "dimensions must be positive");
        let mut sm = SplitMix64::new(seed);
        Self {
            width,
            counters: vec![0; depth * width],
            hashes: (0..depth).map(|_| PairwiseHash::new(sm.derive())).collect(),
            total: 0,
            conservative: false,
            scratch: BatchScratch::default(),
        }
    }

    /// Sketch sized for the standard guarantee: point-query error at most
    /// `eps·F_1` with failure probability `delta` — `w = ⌈e/eps⌉`,
    /// `d = ⌈ln(1/delta)⌉`.
    pub fn with_error(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let width = (std::f64::consts::E / eps).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(depth, width, seed)
    }

    /// Enable conservative update: increment only the minimal counters.
    /// Tightens overestimation on skewed streams; estimates remain
    /// one-sided (never below the true frequency).
    pub fn conservative(mut self) -> Self {
        self.conservative = true;
        self
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.hashes.len()
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total weight inserted (`F_1` of the ingested stream).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Space in 64-bit words (counters only; hash seeds are `O(d)`).
    pub fn space_words(&self) -> usize {
        self.counters.len()
    }

    /// Row hash functions (shared with the atomic variant).
    pub(crate) fn hashes(&self) -> &[PairwiseHash] {
        &self.hashes
    }

    /// The raw row-major counter grid.
    pub(crate) fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Whether conservative update is enabled.
    pub(crate) fn is_conservative(&self) -> bool {
        self.conservative
    }

    /// Reassemble a sketch from raw parts — the atomic variant's quiesce
    /// path. The grid must be `hashes.len() × width`.
    pub(crate) fn from_parts(
        width: usize,
        counters: Vec<u64>,
        hashes: Vec<PairwiseHash>,
        total: u64,
        conservative: bool,
    ) -> Self {
        debug_assert_eq!(counters.len(), width * hashes.len());
        Self {
            width,
            counters,
            hashes,
            total,
            conservative,
            scratch: BatchScratch::default(),
        }
    }

    /// Add `count` occurrences of `x`.
    pub fn update(&mut self, x: u64, count: u64) {
        self.total += count;
        let w = self.width;
        if self.conservative {
            // Hash each row once and reuse the indices for both the minimum
            // scan and the raise pass (the cells are the same ones `query`
            // would visit, so there is no need to hash twice).
            let Self {
                counters,
                hashes,
                scratch,
                ..
            } = self;
            scratch.idx.clear();
            scratch
                .idx
                .extend(hashes.iter().map(|h| h.hash_range(x, w)));
            let est = scratch
                .idx
                .iter()
                .enumerate()
                .map(|(r, &b)| counters[r * w + b])
                .min()
                .unwrap_or(0);
            let target = est + count;
            for (r, &b) in scratch.idx.iter().enumerate() {
                let c = &mut counters[r * w + b];
                *c = (*c).max(target);
            }
        } else {
            for (r, h) in self.hashes.iter().enumerate() {
                self.counters[r * w + h.hash_range(x, w)] += count;
            }
        }
    }

    /// Add one occurrence each of a batch of items — bitwise the same
    /// counters as one-by-one updates.
    ///
    /// Structure-of-arrays pass: each chunk is reduced into the hash field
    /// once, each row's bucket indices come from the SWAR kernel into
    /// reusable scratch, and the counter grid is swept row-major with a
    /// tight index+increment loop (counter additions commute, so the
    /// row-major reorder is exact). Conservative sketches keep the counter
    /// pass item-serial over the precomputed indices, since their updates
    /// are order-dependent.
    pub fn update_batch(&mut self, xs: &[u64]) {
        let w = self.width;
        let d = self.hashes.len();
        let Self {
            counters,
            hashes,
            total,
            conservative,
            scratch,
            ..
        } = self;
        if *conservative {
            for chunk in xs.chunks(BATCH_CHUNK) {
                let len = chunk.len();
                reduce_inputs(chunk, &mut scratch.xr);
                scratch.idx.resize(d * len, 0);
                for (r, h) in hashes.iter().enumerate() {
                    h.hash_range_batch(&scratch.xr, w, &mut scratch.idx[r * len..(r + 1) * len]);
                }
                for i in 0..len {
                    let mut est = u64::MAX;
                    for r in 0..d {
                        est = est.min(counters[r * w + scratch.idx[r * len + i]]);
                    }
                    let target = est + 1;
                    for r in 0..d {
                        let c = &mut counters[r * w + scratch.idx[r * len + i]];
                        *c = (*c).max(target);
                    }
                }
                *total += len as u64;
            }
        } else {
            for chunk in xs.chunks(BATCH_CHUNK) {
                let len = chunk.len();
                reduce_inputs(chunk, &mut scratch.xr);
                scratch.idx.resize(len, 0);
                for (r, h) in hashes.iter().enumerate() {
                    h.hash_range_batch(&scratch.xr, w, &mut scratch.idx);
                    let row = &mut counters[r * w..(r + 1) * w];
                    for &b in &scratch.idx[..len] {
                        row[b] += 1;
                    }
                }
                *total += len as u64;
            }
        }
    }

    /// Batch update (one occurrence per item) that also reports each item's
    /// post-update point query — exactly `update(x, 1)` followed by
    /// `query(x)`, without hashing the item twice. The sink is invoked once
    /// per item, in stream order, with `(x, n_after, est)` where `n_after`
    /// is the stream length including `x`; running it inline avoids a
    /// round-trip through an estimate buffer. Plain sketches only; this is
    /// the heavy-hitter admission kernel.
    pub(crate) fn update_batch_fold(&mut self, xs: &[u64], mut sink: impl FnMut(u64, u64, u64)) {
        debug_assert!(!self.conservative);
        let w = self.width;
        let d = self.hashes.len();
        let Self {
            counters,
            hashes,
            total,
            scratch,
            ..
        } = self;
        for chunk in xs.chunks(BATCH_CHUNK) {
            let len = chunk.len();
            reduce_inputs(chunk, &mut scratch.xr);
            scratch.idx.resize(d * len, 0);
            for (r, h) in hashes.iter().enumerate() {
                h.hash_range_batch(&scratch.xr, w, &mut scratch.idx[r * len..(r + 1) * len]);
            }
            // Item-serial so duplicates within the chunk observe each
            // other's increments, exactly like the scalar path.
            for (i, &x) in chunk.iter().enumerate() {
                let mut est = u64::MAX;
                for r in 0..d {
                    let c = &mut counters[r * w + scratch.idx[r * len + i]];
                    *c += 1;
                    est = est.min(*c);
                }
                sink(x, *total + i as u64 + 1, est);
            }
            *total += len as u64;
        }
    }

    /// Point query: an overestimate of the frequency of `x`.
    pub fn query(&self, x: u64) -> u64 {
        self.hashes
            .iter()
            .enumerate()
            .map(|(r, h)| self.counters[r * self.width + h.hash_range(x, self.width)])
            .min()
            .unwrap_or(0)
    }

    /// Merge another sketch built with the same dimensions and seed.
    ///
    /// # Panics
    /// If dimensions or hash functions differ.
    pub fn merge(&mut self, other: &CountMin) {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.hashes, other.hashes, "incompatible hash functions");
        assert_eq!(
            self.conservative, other.conservative,
            "cannot merge conservative with plain"
        );
        assert!(
            !self.conservative,
            "conservative sketches are not mergeable"
        );
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.total += other.total;
    }
}

impl WireCodec for CountMin {
    const WIRE_TAG: u16 = 0x0204;
    const MIN_WIRE_BYTES: usize = 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        // v2 layout: the counter grid (the dominant section — counts are
        // tiny next to their fixed 8-byte v1 cells) ships FoR-packed.
        put_varint_u64(out, self.width as u64);
        put_packed_u64s(out, &self.counters);
        self.hashes.encode_into(out);
        put_varint_u64(out, self.total);
        self.conservative.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let (width, counters, hashes, total, conservative);
        if r.v2() {
            width = r.varint_u64()? as usize;
            counters = r.packed_u64s()?;
            hashes = Vec::<PairwiseHash>::decode(r)?;
            total = r.varint_u64()?;
            conservative = r.bool()?;
        } else {
            width = usize::decode(r)?;
            counters = Vec::<u64>::decode(r)?;
            hashes = Vec::<PairwiseHash>::decode(r)?;
            total = r.u64()?;
            conservative = r.bool()?;
        }
        if width == 0
            || hashes.is_empty()
            || width.checked_mul(hashes.len()) != Some(counters.len())
        {
            return Err(CodecError::Invalid {
                what: "CountMin counter grid does not match depth x width",
            });
        }
        Ok(CountMin {
            width,
            counters,
            hashes,
            total,
            conservative,
            scratch: BatchScratch::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sss_hash::{RngCore64, Xoshiro256pp};

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::new(4, 64, 1);
        let mut rng = Xoshiro256pp::new(2);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let x = rng.next_below(500);
            cm.update(x, 1);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        for (&x, &f) in &truth {
            assert!(cm.query(x) >= f, "underestimate at {x}");
        }
    }

    #[test]
    fn error_bound_holds_with_slack() {
        let eps = 0.01;
        let mut cm = CountMin::with_error(eps, 0.01, 3);
        let n = 100_000u64;
        let mut rng = Xoshiro256pp::new(4);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..n {
            let x = rng.next_below(10_000);
            cm.update(x, 1);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        let bound = (eps * n as f64) as u64;
        let bad = truth
            .iter()
            .filter(|(&x, &f)| cm.query(x) > f + bound)
            .count();
        // delta = 1% per query; allow 3% of 10k queries.
        assert!(bad <= truth.len() / 33, "bad = {bad} / {}", truth.len());
    }

    #[test]
    fn absent_items_bounded_by_eps_f1() {
        let mut cm = CountMin::with_error(0.005, 0.01, 5);
        for x in 0..5000u64 {
            cm.update(x, 3);
        }
        let f1 = cm.total() as f64;
        let bound = (0.005 * f1) as u64;
        let mut bad = 0;
        for x in 100_000..101_000u64 {
            if cm.query(x) > bound {
                bad += 1;
            }
        }
        assert!(bad <= 30, "bad = {bad}");
    }

    #[test]
    fn conservative_update_never_underestimates_and_is_tighter() {
        let mut plain = CountMin::new(3, 32, 7);
        let mut cons = CountMin::new(3, 32, 7).conservative();
        let mut rng = Xoshiro256pp::new(8);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..20_000 {
            // Skewed: item 0 is hot.
            let x = if rng.next_bool(0.5) {
                0
            } else {
                rng.next_below(2000)
            };
            plain.update(x, 1);
            cons.update(x, 1);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        let mut plain_err = 0u64;
        let mut cons_err = 0u64;
        for (&x, &f) in &truth {
            assert!(cons.query(x) >= f);
            plain_err += plain.query(x) - f;
            cons_err += cons.query(x) - f;
        }
        assert!(
            cons_err <= plain_err,
            "cons {cons_err} vs plain {plain_err}"
        );
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = CountMin::new(4, 128, 9);
        let mut b = CountMin::new(4, 128, 9);
        let mut whole = CountMin::new(4, 128, 9);
        for x in 0..1000u64 {
            a.update(x % 50, 1);
            whole.update(x % 50, 1);
        }
        for x in 0..1000u64 {
            b.update(x % 77, 2);
            whole.update(x % 77, 2);
        }
        a.merge(&b);
        assert_eq!(a.total(), whole.total());
        for x in 0..100u64 {
            assert_eq!(a.query(x), whole.query(x));
        }
    }

    // Batch-vs-scalar equivalence (plain and conservative) is pinned by
    // the shared battery in tests/batch_equiv.rs (crate::equiv harness).

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_different_seeds() {
        let mut a = CountMin::new(2, 16, 1);
        let b = CountMin::new(2, 16, 2);
        a.merge(&b);
    }

    #[test]
    fn with_error_dimensions() {
        let cm = CountMin::with_error(0.01, 0.001, 1);
        assert!(cm.width() >= 271); // e/0.01 ≈ 271.8
        assert!(cm.depth() >= 7); // ln(1000) ≈ 6.9
    }

    #[test]
    fn weighted_updates() {
        let mut cm = CountMin::new(4, 64, 10);
        cm.update(42, 100);
        cm.update(42, 23);
        assert!(cm.query(42) >= 123);
        assert_eq!(cm.total(), 123);
    }
}
