//! Batch-vs-scalar equivalence battery: every sketch substrate with an
//! `update_batch`, checked through the shared harness
//! (`sss_sketch::equiv`) — estimates bit-for-bit AND encoded snapshots
//! byte-for-byte, across seeds × chunk sizes.

use sss_hash::{RngCore64, Xoshiro256pp};
use sss_sketch::equiv::assert_batch_equals_scalar;
use sss_sketch::levelset::LevelSetConfig;
use sss_sketch::{
    AmsF2, CmHeavyHitters, CountMin, CountSketch, CsHeavyHitters, EntropyEstimator, HyperLogLog,
    KmvSketch, LevelSetEstimator, MedianF0, MgHeavyHitters, MisraGries, SpaceSaving,
};

/// Skewed mixture: a few hot items over a long uniform tail — exercises
/// duplicate-heavy paths, counter churn and candidate admission.
fn mixed(seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256pp::new(seed);
    (0..12_000)
        .map(|_| {
            if rng.next_bool(0.4) {
                rng.next_below(3)
            } else {
                3 + rng.next_below(4096)
            }
        })
        .collect()
}

/// A stream whose dominant item appears, disappears and returns —
/// exercises the entropy estimator's leader transitions and the
/// Misra–Gries decrement-all path.
fn leadered(seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256pp::new(seed);
    let mut xs: Vec<u64> = (0..4_000).map(|_| 42).collect();
    for _ in 0..8_000 {
        xs.push(if rng.next_bool(0.6) {
            42
        } else {
            rng.next_below(4096)
        });
    }
    for _ in 0..4_000 {
        xs.push(rng.next_below(64));
    }
    xs
}

fn pairs_to_f64(v: Vec<(u64, u64)>) -> Vec<f64> {
    v.into_iter()
        .flat_map(|(i, c)| [i as f64, c as f64])
        .collect()
}

#[test]
fn kmv_sketch() {
    assert_batch_equals_scalar(
        "KmvSketch",
        mixed,
        |seed| KmvSketch::new(64, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

#[test]
fn median_f0() {
    assert_batch_equals_scalar(
        "MedianF0",
        mixed,
        |seed| MedianF0::new(33, 5, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

#[test]
fn count_min_plain() {
    assert_batch_equals_scalar(
        "CountMin",
        mixed,
        |seed| CountMin::new(4, 128, seed),
        |s, x| s.update(x, 1),
        |s, xs| s.update_batch(xs),
        |s| (0..64).map(|x| s.query(x) as f64).collect(),
    );
}

#[test]
fn count_min_conservative() {
    assert_batch_equals_scalar(
        "CountMin(conservative)",
        mixed,
        |seed| CountMin::new(4, 128, seed).conservative(),
        |s, x| s.update(x, 1),
        |s, xs| s.update_batch(xs),
        |s| (0..64).map(|x| s.query(x) as f64).collect(),
    );
}

#[test]
fn count_sketch() {
    assert_batch_equals_scalar(
        "CountSketch",
        mixed,
        |seed| CountSketch::new(5, 127, seed),
        |s, x| s.update(x, 1),
        |s, xs| s.update_batch(xs),
        |s| (0..64).map(|x| s.query(x) as f64).collect(),
    );
}

#[test]
fn ams_f2() {
    assert_batch_equals_scalar(
        "AmsF2",
        mixed,
        |seed| AmsF2::new(16, 5, seed),
        |s, x| s.update(x, 1),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

#[test]
fn hyper_log_log() {
    assert_batch_equals_scalar(
        "HyperLogLog",
        mixed,
        |seed| HyperLogLog::new(10, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

#[test]
fn space_saving() {
    assert_batch_equals_scalar(
        "SpaceSaving",
        mixed,
        |_seed| SpaceSaving::new(32),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| {
            s.items()
                .into_iter()
                .flat_map(|(i, c, e)| [i as f64, c as f64, e as f64])
                .collect()
        },
    );
}

#[test]
fn misra_gries() {
    assert_batch_equals_scalar(
        "MisraGries",
        leadered,
        |_seed| MisraGries::new(32),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| pairs_to_f64(s.items()),
    );
}

#[test]
fn level_sets() {
    assert_batch_equals_scalar(
        "LevelSetEstimator",
        mixed,
        |seed| LevelSetEstimator::new(&LevelSetConfig::for_universe(1 << 12, 64), seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| (1..4).map(|ell| s.collision_estimate(ell)).collect(),
    );
}

#[test]
fn entropy_estimator() {
    assert_batch_equals_scalar(
        "EntropyEstimator",
        leadered,
        |seed| EntropyEstimator::new(128, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| vec![s.estimate()],
    );
}

#[test]
fn cm_heavy_hitters() {
    assert_batch_equals_scalar(
        "CmHeavyHitters",
        mixed,
        |seed| CmHeavyHitters::new(0.05, 0.01, 0.05, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| pairs_to_f64(s.report()),
    );
}

#[test]
fn cs_heavy_hitters() {
    assert_batch_equals_scalar(
        "CsHeavyHitters",
        mixed,
        |seed| CsHeavyHitters::new(0.05, 0.01, 0.05, seed),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| pairs_to_f64(s.report()),
    );
}

#[test]
fn mg_heavy_hitters() {
    assert_batch_equals_scalar(
        "MgHeavyHitters",
        leadered,
        |_seed| MgHeavyHitters::new(0.05, 0.1),
        |s, x| s.update(x),
        |s, xs| s.update_batch(xs),
        |s| pairs_to_f64(s.report()),
    );
}
