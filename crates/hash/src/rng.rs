//! Minimal deterministic PRNGs.
//!
//! We deliberately avoid an external RNG dependency: reproducible seeding is
//! part of the experiment contract of this workspace, and the two generators
//! here (Vigna's SplitMix64 and Xoshiro256++) are tiny, well-studied, and
//! fully specified by their reference C implementations.

use sss_codec::{CodecError, Reader, WireCodec};

/// A source of uniformly distributed `u64` words.
///
/// This is the only RNG interface the workspace uses. Helper methods supply
/// the handful of derived distributions the estimators need.
pub trait RngCore64 {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: the standard unbiased construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and a single
    /// multiplication in the common case.
    #[inline]
    fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            // Rejection zone for exact uniformity.
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    #[inline]
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Number of failures before the first success in independent Bernoulli
    /// trials with success probability `p` — i.e. a `Geometric(p)` skip count
    /// supported on `{0, 1, 2, …}`.
    ///
    /// Sampled by inversion: `floor(ln U / ln(1−p))`. Used by the
    /// skip-optimised Bernoulli sampler to jump over non-sampled elements in
    /// `O(1)` time per *sampled* element.
    #[inline]
    fn next_geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric requires p in (0,1]");
        if p >= 1.0 {
            return 0;
        }
        // u ∈ (0,1]: avoid ln(0).
        let u = 1.0 - self.next_f64();
        let skips = (u.ln() / (1.0 - p).ln()).floor();
        if skips >= u64::MAX as f64 {
            u64::MAX
        } else {
            skips as u64
        }
    }
}

/// Vigna's SplitMix64: a 64-bit state Weyl-sequence generator.
///
/// Primarily a **seed expander**: one word of seed material is enough to
/// derive arbitrarily many independent-looking sub-seeds for sketches, hash
/// families and generators. Passes BigCrush when used directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive a fresh sub-seed; equivalent to `next_u64` but named for
    /// intent at call sites that fan out seeds to child structures.
    #[inline]
    pub fn derive(&mut self) -> u64 {
        self.next_u64()
    }

    /// A child generator for lane `lane` of a family rooted at this
    /// generator's current state; `self` is not advanced, so every lane is
    /// reachable without consuming the parent's sequence. See
    /// [`split_seed`] for the mixing contract.
    #[inline]
    pub fn split(&self, lane: u64) -> SplitMix64 {
        SplitMix64::new(split_seed(self.state, lane))
    }
}

/// Derive the `lane`-th seed of a family of statistically independent
/// child seeds rooted at `seed` — the seed-splitting primitive behind
/// sharded pipelines (shard `i` gets `split_seed(base, i)`).
///
/// Unlike `SplitMix64::derive`, which hands out seeds *sequentially*,
/// this is **random access**: lane `i` can be computed without computing
/// lanes `0..i`, so shards can be constructed independently and in any
/// order. The construction interleaves two full SplitMix64 finalisation
/// rounds with lane injection on distinct Weyl constants, so nearby
/// `(seed, lane)` pairs land on unrelated outputs and lane families of
/// different roots do not collide structurally.
#[inline]
pub fn split_seed(seed: u64, lane: u64) -> u64 {
    // Round 1: finalise the root XORed with a Weyl-spread lane.
    let mut sm = SplitMix64::new(seed ^ lane.wrapping_mul(0xA24B_AED4_963E_E407));
    let a = sm.next_u64();
    // Round 2: re-inject the lane additively so (seed, lane) and
    // (seed', lane') collisions require inverting both rounds at once.
    let mut sm = SplitMix64::new(a.wrapping_add(lane.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    sm.next_u64()
}

impl RngCore64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256++ (Blackman & Vigna): the workspace's general-purpose PRNG.
///
/// 256 bits of state, period `2^256 − 1`, passes all known statistical test
/// batteries; seeded through SplitMix64 as the authors recommend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 expansion of `seed` (reference construction).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is invalid; SplitMix64 cannot produce four
        // consecutive zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Jump function equivalent to 2^128 calls of `next_u64`; generates
    /// non-overlapping subsequences for parallel trials.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    acc[0] ^= self.s[0];
                    acc[1] ^= self.s[1];
                    acc[2] ^= self.s[2];
                    acc[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl RngCore64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl WireCodec for SplitMix64 {
    const WIRE_TAG: u16 = 0x0101;
    const MIN_WIRE_BYTES: usize = 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.state.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        Ok(SplitMix64 { state: r.u64()? })
    }
}

impl WireCodec for Xoshiro256pp {
    const WIRE_TAG: u16 = 0x0102;
    const MIN_WIRE_BYTES: usize = 32;

    fn encode_into(&self, out: &mut Vec<u8>) {
        for w in &self.s {
            w.encode_into(out);
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = r.u64()?;
        }
        if s == [0, 0, 0, 0] {
            // The all-zero state is a fixed point of the generator; no
            // constructor can produce it, so it cannot be honest data.
            return Err(CodecError::Invalid {
                what: "Xoshiro256pp all-zero state",
            });
        }
        Ok(Xoshiro256pp { s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vectors_seed_zero() {
        // First outputs for seed 0, per the reference C implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(rng.next_u64(), 0xF88B_B8A8_724C_81EC);
        assert_eq!(rng.next_u64(), 0x1B39_896A_51A8_749B);
    }

    #[test]
    fn splitmix64_reference_vectors_nonzero_seed() {
        let mut rng = SplitMix64::new(0x0123_4567_89AB_CDEF);
        assert_eq!(rng.next_u64(), 0x157A_3807_A48F_AA9D);
        assert_eq!(rng.next_u64(), 0xD573_529B_34A1_D093);
        assert_eq!(rng.next_u64(), 0x2F90_B72E_996D_CCBE);
    }

    #[test]
    fn split_seed_is_deterministic_and_lane_sensitive() {
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
        assert_ne!(split_seed(42, 7), split_seed(42, 8));
        assert_ne!(split_seed(42, 7), split_seed(43, 7));
        // Lane 0 must still be mixed, not the root itself.
        assert_ne!(split_seed(42, 0), 42);
    }

    #[test]
    fn split_seed_families_have_no_small_collisions() {
        // 64 roots × 64 lanes: all 4096 child seeds distinct.
        let mut seen = std::collections::HashSet::new();
        for root in 0..64u64 {
            for lane in 0..64u64 {
                assert!(
                    seen.insert(split_seed(root, lane)),
                    "collision at root {root}, lane {lane}"
                );
            }
        }
    }

    #[test]
    fn split_matches_split_seed_and_leaves_parent_untouched() {
        let parent = SplitMix64::new(99);
        let child_a = parent.split(3);
        let child_b = parent.split(3);
        assert_eq!(child_a, child_b, "split must not advance the parent");
        assert_eq!(child_a, SplitMix64::new(split_seed(99, 3)));
    }

    #[test]
    fn split_seed_child_streams_look_independent() {
        // Child generators from adjacent lanes should not share a prefix.
        let mut a = SplitMix64::new(split_seed(7, 0));
        let mut b = SplitMix64::new(split_seed(7, 1));
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // Crude bit balance across lanes of one root.
        let ones: u32 = (0..256u64).map(|l| split_seed(11, l).count_ones()).sum();
        let mean = ones as f64 / 256.0;
        assert!((mean - 32.0).abs() < 2.0, "bit balance {mean}");
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::new(7);
        let mut b = Xoshiro256pp::new(7);
        let mut c = Xoshiro256pp::new(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut a = Xoshiro256pp::new(42);
        let mut b = a.clone();
        b.jump();
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_near_half() {
        let mut rng = Xoshiro256pp::new(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256pp::new(3);
        let n = 10u64;
        let mut counts = [0u64; 10];
        let trials = 100_000;
        for _ in 0..trials {
            let v = rng.next_below(n);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        let expected = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i}: count {c} vs expected {expected}");
        }
    }

    #[test]
    fn next_below_one_is_zero() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..100 {
            assert_eq!(rng.next_below(1), 0);
        }
    }

    #[test]
    fn geometric_mean_matches_theory() {
        // E[skips] = (1-p)/p.
        let mut rng = Xoshiro256pp::new(4);
        let p = 0.05;
        let trials = 200_000;
        let sum: f64 = (0..trials).map(|_| rng.next_geometric(p) as f64).sum();
        let mean = sum / trials as f64;
        let expected = (1.0 - p) / p;
        assert!(
            (mean - expected).abs() / expected < 0.03,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn geometric_with_p_one_is_always_zero() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..32 {
            assert_eq!(rng.next_geometric(1.0), 0);
        }
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let mut rng = Xoshiro256pp::new(6);
        let p = 0.3;
        let trials = 200_000;
        let hits = (0..trials).filter(|_| rng.next_bool(p)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - p).abs() < 0.01, "rate {rate}");
    }
}
