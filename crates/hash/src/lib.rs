//! Seedable PRNGs and k-wise independent hash families.
//!
//! Every randomized structure in this workspace draws its randomness from the
//! primitives in this crate so that experiments are deterministic across
//! platforms and runs:
//!
//! * [`SplitMix64`] — seed expander (one `u64` seed → stream of well-mixed
//!   words); used to derive the seeds of every other structure.
//! * [`Xoshiro256pp`] — general-purpose PRNG with 256-bit state, used by
//!   samplers and workload generators.
//! * [`PolyHash`] — k-wise independent polynomial hashing over the Mersenne
//!   prime `2^61 − 1`; the theoretical workhorse behind CountMin rows
//!   (2-wise), AMS/CountSketch sign hashes (4-wise) and Indyk–Woodruff
//!   subsampling levels (2-wise).
//! * [`TabulationHash`] — simple tabulation hashing, a fast 3-wise
//!   independent (and much stronger in practice) alternative.
//!
//! The crate is `no_std`-friendly in spirit (no I/O, no OS randomness): all
//! seeding is explicit.

#![forbid(unsafe_code)]

pub mod batch;
pub mod map;
pub mod mix;
pub mod poly;
pub mod rng;
pub mod sign;
pub mod tabulation;

pub use batch::{reduce_inputs, LANES};
pub use map::{fp_hash_map, fp_hash_set, FpHashMap, FpHashSet};
pub use mix::{fingerprint64, reduce_range, to_unit_f64};
pub use poly::{PairwiseHash, PolyHash, MERSENNE_PRIME_61};
pub use rng::{split_seed, RngCore64, SplitMix64, Xoshiro256pp};
pub use sign::FourWiseSign;
pub use tabulation::TabulationHash;
