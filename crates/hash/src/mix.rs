//! Bit-mixing finalizers and range/unit reductions shared by the hash
//! families and sketches.

/// A strong 64-bit finalizer (the SplitMix64 / MurmurHash3 `fmix64`
/// constants). Bijective on `u64`, so it never loses entropy; used to spread
/// the low-entropy outputs of algebraic hash families across all 64 bits
/// before taking top bits (range reduction) or trailing zeros (levels).
#[inline]
pub fn fingerprint64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a uniform `u64` to `[0, range)` by the multiply-shift (Lemire)
/// reduction — unbiased up to `O(range / 2^64)`.
#[inline]
pub fn reduce_range(h: u64, range: usize) -> usize {
    debug_assert!(range > 0);
    (((h as u128) * (range as u128)) >> 64) as usize
}

/// Map a uniform `u64` to a `f64` in `[0, 1)` using its top 53 bits.
#[inline]
pub fn to_unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_injective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for x in 0..100_000u64 {
            assert!(seen.insert(fingerprint64(x)), "collision at {x}");
        }
    }

    #[test]
    fn fingerprint_differs_from_identity() {
        assert_ne!(fingerprint64(0), 0);
        assert_ne!(fingerprint64(1), 1);
    }

    #[test]
    fn reduce_range_bounds() {
        for r in [1usize, 2, 3, 7, 1000] {
            assert!(reduce_range(u64::MAX, r) < r);
            assert_eq!(reduce_range(0, r), 0);
        }
    }

    #[test]
    fn reduce_range_roughly_uniform() {
        let r = 10usize;
        let mut counts = vec![0u32; r];
        let n = 100_000u64;
        for x in 0..n {
            counts[reduce_range(fingerprint64(x), r)] += 1;
        }
        let expected = n as f64 / r as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.05);
        }
    }

    #[test]
    fn unit_f64_bounds_and_spread() {
        let lo = to_unit_f64(0);
        let hi = to_unit_f64(u64::MAX);
        assert_eq!(lo, 0.0);
        assert!(hi < 1.0 && hi > 0.999_999);
    }
}
