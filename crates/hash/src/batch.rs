//! SWAR-style batch hashing kernels — the blessed hot path for `update_batch`.
//!
//! Scalar hashing dominates batch ingestion: every item pays the `x mod
//! (2^61 − 1)` input reduction once *per hash function*, and the compiler
//! cannot keep the polynomial coefficients in registers across the
//! item-major loops the sketches used to run. The kernels here fix both:
//!
//! * [`reduce_inputs`] hoists the input reduction so a chunk is reduced
//!   **once** and the residues shared by every hash function of every row.
//! * The `*_batch` methods on [`PairwiseHash`] / [`FourWiseSign`] evaluate
//!   [`LANES`] independent field elements per iteration in straight-line
//!   code over plain `u64`s (no `unsafe`, no SIMD intrinsics). The four
//!   128-bit multiply/reduce chains have no data dependencies, so the CPU
//!   overlaps them; the multipliers are read once and live in registers for
//!   the whole pass.
//!
//! Every lane computes the *canonical* residue (`< 2^61 − 1`, exactly what
//! the scalar paths produce), so batch results are bitwise identical to the
//! scalar `hash_range` / `sign` calls — the equivalence tests below and the
//! sketch-level batteries in `sss-sketch` pin this.
//!
//! `sss-lint`'s `batch_kernel` rule enforces that per-item `hash_range`
//! calls never appear in `update_batch` bodies outside this module.

use crate::mix::fingerprint64;
use crate::poly::{mod_p61, PairwiseHash, MERSENNE_PRIME_61};
use crate::sign::FourWiseSign;

/// Number of independent field elements evaluated per straight-line
/// iteration of the batch kernels.
pub const LANES: usize = 4;

/// Reduce a chunk of raw inputs into the hash field (`x mod (2^61 − 1)`),
/// reusing `out`'s capacity. Residues computed here feed every `*_batch`
/// kernel for the chunk, so each item is reduced once regardless of how many
/// hash functions consume it.
#[inline]
pub fn reduce_inputs(xs: &[u64], out: &mut Vec<u64>) {
    out.clear();
    out.extend(xs.iter().map(|&x| PairwiseHash::reduce_input(x)));
}

/// One affine lane: `fingerprint64((a·xr + b) mod p)`.
///
/// `a·xr + b < p² + p < 2^122` fits a `u128`, so a single [`mod_p61`] yields
/// the canonical residue — the same value the scalar
/// [`PairwiseHash::hash_prereduced`] computes.
#[inline(always)]
fn affine_fp(a: u64, b: u64, xr: u64) -> u64 {
    debug_assert!(xr < MERSENNE_PRIME_61);
    fingerprint64(mod_p61((a as u128) * (xr as u128) + b as u128))
}

impl PairwiseHash {
    /// Batch [`PairwiseHash::hash_range`] over prereduced inputs.
    ///
    /// `xrs` must hold residues from [`reduce_inputs`]; `out` must be at
    /// least as long as `xrs` (extra tail entries are left untouched).
    /// `out[i]` receives exactly `self.hash_range(x_i, range)`.
    pub fn hash_range_batch(&self, xrs: &[u64], range: usize, out: &mut [usize]) {
        debug_assert!(range > 0);
        debug_assert!(out.len() >= xrs.len());
        let (a, b) = self.affine();
        let r = range as u128;
        let mut chunks = xrs.chunks_exact(LANES);
        let mut outs = out.chunks_exact_mut(LANES);
        for (c, o) in (&mut chunks).zip(&mut outs) {
            // Four independent multiply/reduce/mix chains; the CPU overlaps
            // their 128-bit products while `a`/`b`/`r` stay in registers.
            let h0 = affine_fp(a, b, c[0]);
            let h1 = affine_fp(a, b, c[1]);
            let h2 = affine_fp(a, b, c[2]);
            let h3 = affine_fp(a, b, c[3]);
            o[0] = (((h0 as u128) * r) >> 64) as usize;
            o[1] = (((h1 as u128) * r) >> 64) as usize;
            o[2] = (((h2 as u128) * r) >> 64) as usize;
            o[3] = (((h3 as u128) * r) >> 64) as usize;
        }
        for (&xr, o) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *o = (((affine_fp(a, b, xr) as u128) * r) >> 64) as usize;
        }
    }

    /// Batch `fingerprint64(hash(x))` over prereduced inputs — the KMV
    /// ordering fingerprint. Same contract as
    /// [`PairwiseHash::hash_range_batch`].
    pub fn fingerprints_batch(&self, xrs: &[u64], out: &mut [u64]) {
        debug_assert!(out.len() >= xrs.len());
        let (a, b) = self.affine();
        let mut chunks = xrs.chunks_exact(LANES);
        let mut outs = out.chunks_exact_mut(LANES);
        for (c, o) in (&mut chunks).zip(&mut outs) {
            o[0] = affine_fp(a, b, c[0]);
            o[1] = affine_fp(a, b, c[1]);
            o[2] = affine_fp(a, b, c[2]);
            o[3] = affine_fp(a, b, c[3]);
        }
        for (&xr, o) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *o = affine_fp(a, b, xr);
        }
    }
}

/// One degree-3 Horner lane, fused to a single reduction per step.
///
/// The scalar path reduces twice per step (`mul_mod` then a sum reduction);
/// since `acc`, `xr` and every coefficient are canonical residues,
/// `acc·xr + c < p² + p` fits a `u128` and one [`mod_p61`] lands on the same
/// canonical value.
#[inline(always)]
fn horner3_sign(coeffs: &[u64], xr: u64) -> i64 {
    debug_assert!(xr < MERSENNE_PRIME_61);
    let mut acc: u64 = 0;
    for &c in coeffs.iter().rev() {
        acc = mod_p61((acc as u128) * (xr as u128) + c as u128);
    }
    if fingerprint64(acc) & 1 == 0 {
        1
    } else {
        -1
    }
}

impl FourWiseSign {
    /// Batch [`FourWiseSign::sign`] over prereduced inputs. Same contract as
    /// [`PairwiseHash::hash_range_batch`]; `out[i]` receives `±1`.
    pub fn signs_batch(&self, xrs: &[u64], out: &mut [i64]) {
        debug_assert!(out.len() >= xrs.len());
        let coeffs = self.poly().coeffs();
        let mut chunks = xrs.chunks_exact(LANES);
        let mut outs = out.chunks_exact_mut(LANES);
        for (c, o) in (&mut chunks).zip(&mut outs) {
            o[0] = horner3_sign(coeffs, c[0]);
            o[1] = horner3_sign(coeffs, c[1]);
            o[2] = horner3_sign(coeffs, c[2]);
            o[3] = horner3_sign(coeffs, c[3]);
        }
        for (&xr, o) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *o = horner3_sign(coeffs, xr);
        }
    }

    /// Sum of [`FourWiseSign::sign`] over prereduced inputs — the AMS
    /// tug-of-war inner loop, with no intermediate buffer.
    pub fn sign_sum_batch(&self, xrs: &[u64]) -> i64 {
        let coeffs = self.poly().coeffs();
        let mut sum = 0i64;
        let mut chunks = xrs.chunks_exact(LANES);
        for c in &mut chunks {
            sum += horner3_sign(coeffs, c[0])
                + horner3_sign(coeffs, c[1])
                + horner3_sign(coeffs, c[2])
                + horner3_sign(coeffs, c[3]);
        }
        for &xr in chunks.remainder() {
            sum += horner3_sign(coeffs, xr);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> Vec<u64> {
        // Exercise the field boundary, the lane remainder, and plain values.
        let mut xs: Vec<u64> = (0..1027u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        xs.extend([
            0,
            1,
            MERSENNE_PRIME_61 - 1,
            MERSENNE_PRIME_61,
            MERSENNE_PRIME_61 + 1,
            u64::MAX,
        ]);
        xs
    }

    #[test]
    fn hash_range_batch_matches_scalar() {
        let xs = inputs();
        for seed in 0..8u64 {
            let h = PairwiseHash::new(seed);
            for range in [1usize, 2, 17, 1024, 1 << 20] {
                let mut xr = Vec::new();
                reduce_inputs(&xs, &mut xr);
                let mut out = vec![0usize; xs.len()];
                h.hash_range_batch(&xr, range, &mut out);
                for (&x, &o) in xs.iter().zip(&out) {
                    assert_eq!(o, h.hash_range(x, range), "seed {seed} range {range} x {x}");
                }
            }
        }
    }

    #[test]
    fn fingerprints_batch_matches_scalar() {
        let xs = inputs();
        for seed in 0..8u64 {
            let h = PairwiseHash::new(seed);
            let mut xr = Vec::new();
            reduce_inputs(&xs, &mut xr);
            let mut out = vec![0u64; xs.len()];
            h.fingerprints_batch(&xr, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                assert_eq!(o, fingerprint64(h.hash(x)), "seed {seed} x {x}");
            }
        }
    }

    #[test]
    fn signs_batch_matches_scalar() {
        let xs = inputs();
        for seed in 0..8u64 {
            let s = FourWiseSign::new(seed);
            let mut xr = Vec::new();
            reduce_inputs(&xs, &mut xr);
            let mut out = vec![0i64; xs.len()];
            s.signs_batch(&xr, &mut out);
            for (&x, &o) in xs.iter().zip(&out) {
                assert_eq!(o, s.sign(x), "seed {seed} x {x}");
            }
        }
    }

    #[test]
    fn sign_sum_matches_scalar_sum() {
        let xs = inputs();
        for seed in 0..8u64 {
            let s = FourWiseSign::new(seed);
            let mut xr = Vec::new();
            reduce_inputs(&xs, &mut xr);
            let scalar: i64 = xs.iter().map(|&x| s.sign(x)).sum();
            assert_eq!(s.sign_sum_batch(&xr), scalar, "seed {seed}");
        }
    }

    #[test]
    fn reduce_inputs_reuses_capacity() {
        let mut out = Vec::new();
        reduce_inputs(&[1, 2, 3], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        let cap = out.capacity();
        reduce_inputs(&[u64::MAX], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out.capacity() >= cap.min(1));
        assert_eq!(out[0], PairwiseHash::reduce_input(u64::MAX));
    }
}
