//! Four-wise independent `±1` sign hashes for AMS and CountSketch.
//!
//! The second-moment analyses of AMS tug-of-war sketches and CountSketch
//! require `E[s(x)s(y)s(z)s(w)] = 0` for distinct arguments, i.e. 4-wise
//! independence. We derive the sign from one output bit of a degree-3
//! polynomial over `GF(2^61 − 1)`.

use sss_codec::{CodecError, Reader, WireCodec};

use crate::poly::PolyHash;

/// A 4-wise independent function `u64 → {−1, +1}`.
#[derive(Debug, Clone)]
pub struct FourWiseSign {
    poly: PolyHash,
}

impl FourWiseSign {
    /// Draw a random member of the family from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            poly: PolyHash::new(4, seed),
        }
    }

    /// The degree-3 polynomial behind the sign (for the batch kernels in
    /// [`crate::batch`]).
    #[inline]
    pub(crate) fn poly(&self) -> &PolyHash {
        &self.poly
    }

    /// The sign assigned to `x`, as `±1`.
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        // Parity of a mixed output bit: each bit of the fingerprint of a
        // 4-wise value is 4-wise independent and unbiased.
        if crate::mix::fingerprint64(self.poly.hash(x)) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

impl WireCodec for FourWiseSign {
    const WIRE_TAG: u16 = 0x0105;
    const MIN_WIRE_BYTES: usize = 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.poly.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let poly = PolyHash::decode(r)?;
        if poly.independence() != 4 {
            return Err(CodecError::Invalid {
                what: "FourWiseSign polynomial is not degree 3",
            });
        }
        Ok(FourWiseSign { poly })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signs_are_plus_minus_one_and_deterministic() {
        let s = FourWiseSign::new(5);
        for x in 0..1000u64 {
            let v = s.sign(x);
            assert!(v == 1 || v == -1);
            assert_eq!(v, s.sign(x));
        }
    }

    #[test]
    fn signs_are_unbiased() {
        let s = FourWiseSign::new(6);
        let n = 200_000u64;
        let sum: i64 = (0..n).map(|x| s.sign(x)).sum();
        // For unbiased ±1, |sum| ~ sqrt(n) ≈ 450; allow 5 sigma.
        assert!((sum as f64).abs() < 5.0 * (n as f64).sqrt(), "sum = {sum}");
    }

    #[test]
    fn pair_products_are_unbiased() {
        // 2-wise consequence of 4-wise independence:
        // E[s(x)s(y)] = 0 across random function draws.
        let mut total = 0i64;
        let draws = 2000u64;
        for seed in 0..draws {
            let s = FourWiseSign::new(seed);
            total += s.sign(123) * s.sign(456);
        }
        assert!(
            (total as f64).abs() < 5.0 * (draws as f64).sqrt(),
            "sum of pair products = {total}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = FourWiseSign::new(1);
        let b = FourWiseSign::new(2);
        let differs = (0..256u64).any(|x| a.sign(x) != b.sign(x));
        assert!(differs);
    }
}
