//! Simple tabulation hashing (Zobrist / Pătrașcu–Thorup).
//!
//! Splits a 64-bit key into 8 bytes and XORs 8 random table entries. Only
//! 3-wise independent in the worst case, but Pătrașcu–Thorup showed it
//! behaves like a fully random function for linear probing, CountMin-style
//! bucketing and min-wise applications. It is the fast engineering
//! alternative where the analysis does not demand ≥4-wise polynomial
//! families; evaluation is 8 table lookups and XORs, no multiplications.

use sss_codec::{put_u64, CodecError, Reader, WireCodec};

use crate::rng::{RngCore64, SplitMix64};

/// Bytes per key; we hash the full 64-bit item identifier.
const CHUNKS: usize = 8;

/// A simple tabulation hash `u64 → u64`.
#[derive(Debug, Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; 256]; CHUNKS]>,
}

impl TabulationHash {
    /// Fill the 8×256 tables from the seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut tables = Box::new([[0u64; 256]; CHUNKS]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = rng.next_u64();
            }
        }
        Self { tables }
    }

    /// Hash a 64-bit key.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let bytes = x.to_le_bytes();
        let mut h = 0u64;
        for (i, &b) in bytes.iter().enumerate() {
            h ^= self.tables[i][b as usize];
        }
        h
    }

    /// Hash into `[0, range)`.
    #[inline]
    pub fn hash_range(&self, x: u64, range: usize) -> usize {
        crate::mix::reduce_range(self.hash(x), range)
    }
}

impl WireCodec for TabulationHash {
    const WIRE_TAG: u16 = 0x0106;
    const MIN_WIRE_BYTES: usize = CHUNKS * 256 * 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(Self::MIN_WIRE_BYTES);
        for table in self.tables.iter() {
            for &slot in table.iter() {
                put_u64(out, slot);
            }
        }
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let mut tables = Box::new([[0u64; 256]; CHUNKS]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = r.u64()?;
            }
        }
        Ok(TabulationHash { tables })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = TabulationHash::new(1);
        let b = TabulationHash::new(1);
        let c = TabulationHash::new(2);
        let mut differs = false;
        for x in 0..512u64 {
            assert_eq!(a.hash(x), b.hash(x));
            differs |= a.hash(x) != c.hash(x);
        }
        assert!(differs);
    }

    #[test]
    fn no_collisions_on_small_dense_domain() {
        use std::collections::HashSet;
        let h = TabulationHash::new(3);
        let mut seen = HashSet::new();
        for x in 0..100_000u64 {
            // 64-bit outputs over 1e5 keys: birthday bound ≈ 2.7e-10.
            assert!(seen.insert(h.hash(x)), "collision at {x}");
        }
    }

    #[test]
    fn range_hash_roughly_uniform() {
        let h = TabulationHash::new(4);
        let range = 32usize;
        let n = 320_000u64;
        let mut counts = vec![0u32; range];
        for x in 0..n {
            counts[h.hash_range(x, range)] += 1;
        }
        let expected = n as f64 / range as f64;
        for &c in &counts {
            assert!((c as f64 - expected).abs() / expected < 0.05);
        }
    }

    #[test]
    fn single_byte_change_flips_output() {
        let h = TabulationHash::new(5);
        assert_ne!(h.hash(0), h.hash(1));
        assert_ne!(h.hash(0), h.hash(1 << 56));
    }
}
