//! k-wise independent polynomial hashing over the Mersenne prime `2^61 − 1`.
//!
//! A degree-`(k−1)` polynomial with uniformly random coefficients over the
//! field `GF(p)` evaluated at point `x` is a k-wise independent hash family —
//! the textbook construction every analysis in the paper's substrates
//! (CountMin rows, AMS sign hashes, Indyk–Woodruff subsampling) relies on.
//!
//! The Mersenne prime `p = 2^61 − 1` admits branch-light modular reduction:
//! `a mod p` via shift/add on the 122-bit product.

use sss_codec::{CodecError, Reader, WireCodec};

use crate::rng::{RngCore64, SplitMix64};

/// The Mersenne prime `2^61 − 1` used as the hash field modulus.
pub const MERSENNE_PRIME_61: u64 = (1u64 << 61) - 1;

/// Reduce a 128-bit value modulo `2^61 − 1`.
#[inline]
pub(crate) fn mod_p61(x: u128) -> u64 {
    const P: u64 = MERSENNE_PRIME_61;
    // x = hi·2^61 + lo, and 2^61 ≡ 1 (mod p).
    let lo = (x as u64) & P;
    let hi = (x >> 61) as u64;
    let mut s = lo + (hi & P) + (hi >> 61);
    // s < 3p, so at most two conditional subtractions.
    if s >= P {
        s -= P;
    }
    if s >= P {
        s -= P;
    }
    s
}

/// Multiply two residues mod `2^61 − 1`.
#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    mod_p61((a as u128) * (b as u128))
}

/// A k-wise independent hash function `[2^61−1] → [2^61−1]`.
///
/// Evaluation is Horner's rule: `k − 1` multiply-mod steps per call, i.e.
/// the paper's `Õ(1)` per-update cost with the constant equal to the
/// required independence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyHash {
    /// `coeffs[0]` is the constant term; degree = `coeffs.len() − 1`.
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Draw a uniformly random polynomial of degree `k − 1` (a k-wise
    /// independent function) from the seed.
    ///
    /// The leading coefficient is drawn from `[1, p)` so the polynomial has
    /// exact degree `k − 1` (a standard convention; keeps distinct functions
    /// distinct and costs nothing in independence).
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "independence k must be >= 1");
        let mut rng = SplitMix64::new(seed);
        let mut coeffs = vec![0u64; k];
        for c in coeffs.iter_mut() {
            *c = rng.next_below(MERSENNE_PRIME_61);
        }
        if k > 1 {
            coeffs[k - 1] = 1 + rng.next_below(MERSENNE_PRIME_61 - 1);
        }
        Self { coeffs }
    }

    /// The independence level `k` of the family this function was drawn from.
    #[inline]
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// The raw coefficients, constant term first (for the batch kernels in
    /// [`crate::batch`], which keep them in registers across a lane pass).
    #[inline]
    pub(crate) fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Evaluate the polynomial at `x` (any `u64`; inputs ≥ p are first
    /// reduced, which preserves k-wise independence on `[p]` and remains a
    /// well-distributed function on the full `u64` domain for our universes
    /// `m ≤ 2^61 − 2`).
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let x = x % MERSENNE_PRIME_61;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = mod_p61(mul_mod(acc, x) as u128 + c as u128);
        }
        acc
    }

    /// Hash into `[0, range)` by multiply-shift on a 64-bit re-mix of the
    /// field value. For 2-wise families the bucket distribution stays 2-wise
    /// independent up to the usual `O(range/p)` rounding bias (negligible:
    /// `p ≈ 2.3·10^18`).
    #[inline]
    pub fn hash_range(&self, x: u64, range: usize) -> usize {
        debug_assert!(range > 0);
        let h = crate::mix::fingerprint64(self.hash(x));
        (((h as u128) * (range as u128)) >> 64) as usize
    }

    /// Hash to a uniform `f64` in `[0, 1)`. Used for the Indyk–Woodruff
    /// random shift `η` and for hashed-domain distinct sketches.
    #[inline]
    pub fn hash_unit(&self, x: u64) -> f64 {
        crate::mix::to_unit_f64(crate::mix::fingerprint64(self.hash(x)))
    }
}

/// A pairwise (2-wise) independent hash, the cheapest family that suffices
/// for CountMin rows and subsampling levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairwiseHash {
    inner: PolyHash,
}

impl PairwiseHash {
    /// Draw a random function `h(x) = (a·x + b) mod (2^61 − 1)`.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: PolyHash::new(2, seed),
        }
    }

    /// Evaluate into the field `[2^61 − 1]`.
    ///
    /// Specialised affine path: `a·x < 2^122` and `+b` stays within
    /// `u128`, so a single Mersenne reduction replaces generic Horner's
    /// two — same value, one `mod_p61` less.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        self.hash_prereduced(Self::reduce_input(x))
    }

    /// Evaluate into `[0, range)`.
    #[inline]
    pub fn hash_range(&self, x: u64, range: usize) -> usize {
        debug_assert!(range > 0);
        let h = crate::mix::fingerprint64(self.hash(x));
        (((h as u128) * (range as u128)) >> 64) as usize
    }

    /// Reduce an input into the hash field — the `x mod (2^61 − 1)` step
    /// of [`PairwiseHash::hash`], split out so batch callers evaluating
    /// *many* independent functions on the same `x` (e.g. the median-of-k
    /// bottom-k sketches) pay it once per item instead of once per
    /// function.
    #[inline]
    pub fn reduce_input(x: u64) -> u64 {
        x % MERSENNE_PRIME_61
    }

    /// Evaluate on an input already reduced by
    /// [`PairwiseHash::reduce_input`]. Equivalent to
    /// [`PairwiseHash::hash`]; `xr` must be `< 2^61 − 1`.
    #[inline]
    pub fn hash_prereduced(&self, xr: u64) -> u64 {
        debug_assert!(xr < MERSENNE_PRIME_61);
        let (a, b) = self.affine();
        mod_p61((a as u128) * (xr as u128) + b as u128)
    }

    /// The `(a, b)` of `h(x) = (a·x + b) mod (2^61 − 1)` (for the batch
    /// kernels in [`crate::batch`]).
    #[inline]
    pub(crate) fn affine(&self) -> (u64, u64) {
        (self.inner.coeffs[1], self.inner.coeffs[0])
    }

    /// Number of trailing zero bits of a 64-bit re-mix of `h(x)`;
    /// `P[level(x) ≥ j] = 2^{−j}`. This is the subsampling level used by the
    /// Indyk–Woodruff structure and by HyperLogLog-style sketches.
    #[inline]
    pub fn level(&self, x: u64) -> u32 {
        let h = crate::mix::fingerprint64(self.hash(x));
        h.trailing_zeros()
    }
}

impl WireCodec for PolyHash {
    const WIRE_TAG: u16 = 0x0103;
    const MIN_WIRE_BYTES: usize = 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.coeffs.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let coeffs: Vec<u64> = Vec::decode(r)?;
        if coeffs.is_empty() {
            return Err(CodecError::Invalid {
                what: "PolyHash with no coefficients",
            });
        }
        if coeffs.iter().any(|&c| c >= MERSENNE_PRIME_61) {
            return Err(CodecError::Invalid {
                what: "PolyHash coefficient outside the Mersenne field",
            });
        }
        if coeffs.len() > 1 && coeffs.last() == Some(&0) {
            // The constructor draws the leading coefficient from [1, p);
            // a zero here would silently lower the independence level.
            return Err(CodecError::Invalid {
                what: "PolyHash leading coefficient is zero",
            });
        }
        Ok(PolyHash { coeffs })
    }
}

impl WireCodec for PairwiseHash {
    const WIRE_TAG: u16 = 0x0104;
    const MIN_WIRE_BYTES: usize = 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.inner.encode_into(out);
    }

    fn decode(r: &mut Reader) -> Result<Self, CodecError> {
        let inner = PolyHash::decode(r)?;
        if inner.independence() != 2 {
            return Err(CodecError::Invalid {
                what: "PairwiseHash polynomial is not degree 1",
            });
        }
        Ok(PairwiseHash { inner })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_p61_agrees_with_naive_remainder() {
        let cases: [u128; 8] = [
            0,
            1,
            MERSENNE_PRIME_61 as u128,
            MERSENNE_PRIME_61 as u128 + 1,
            (MERSENNE_PRIME_61 as u128) * 5 + 17,
            u64::MAX as u128,
            u128::MAX >> 6,
            (MERSENNE_PRIME_61 as u128) * (MERSENNE_PRIME_61 as u128),
        ];
        for &c in &cases {
            assert_eq!(
                mod_p61(c) as u128,
                c % MERSENNE_PRIME_61 as u128,
                "case {c}"
            );
        }
    }

    #[test]
    fn mul_mod_matches_u128_arithmetic() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            let a = rng.next_below(MERSENNE_PRIME_61);
            let b = rng.next_below(MERSENNE_PRIME_61);
            let expect = ((a as u128) * (b as u128) % MERSENNE_PRIME_61 as u128) as u64;
            assert_eq!(mul_mod(a, b), expect);
        }
    }

    #[test]
    fn hash_is_deterministic_and_seed_sensitive() {
        let h1 = PolyHash::new(4, 1);
        let h2 = PolyHash::new(4, 1);
        let h3 = PolyHash::new(4, 2);
        let mut differs = false;
        for x in 0..256u64 {
            assert_eq!(h1.hash(x), h2.hash(x));
            differs |= h1.hash(x) != h3.hash(x);
        }
        assert!(differs);
    }

    #[test]
    fn pairwise_specialised_path_matches_generic_horner() {
        for seed in 0..16u64 {
            let fast = PairwiseHash::new(seed);
            let generic = PolyHash::new(2, seed);
            for x in [
                0u64,
                1,
                17,
                1 << 20,
                u64::MAX,
                MERSENNE_PRIME_61,
                0xDEAD_BEEF,
            ] {
                assert_eq!(fast.hash(x), generic.hash(x), "seed {seed} x {x}");
            }
        }
    }

    #[test]
    fn degree_one_is_affine() {
        // A 2-wise function is a·x+b: check via three collinear points.
        let h = PairwiseHash::new(7);
        let p = MERSENNE_PRIME_61 as u128;
        let y0 = h.hash(0) as u128;
        let y1 = h.hash(1) as u128;
        let y2 = h.hash(2) as u128;
        // y2 − y1 ≡ y1 − y0 (mod p)
        assert_eq!((y2 + p - y1) % p, (y1 + p - y0) % p);
    }

    #[test]
    fn range_hash_is_roughly_uniform() {
        let h = PolyHash::new(2, 3);
        let range = 16usize;
        let mut counts = vec![0u32; range];
        let n = 160_000u64;
        for x in 0..n {
            counts[h.hash_range(x, range)] += 1;
        }
        let expected = n as f64 / range as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} count {c} expected {expected}");
        }
    }

    #[test]
    fn pairwise_collision_rate_close_to_uniform() {
        // Empirical collision probability across random pairs should be
        // ≈ 1/range for a pairwise family.
        let range = 1024usize;
        let mut collisions = 0u32;
        let trials = 400u64;
        for seed in 0..trials {
            let h = PairwiseHash::new(seed);
            if h.hash_range(12345, range) == h.hash_range(67890, range) {
                collisions += 1;
            }
        }
        // E[collisions] ≈ trials/range ≈ 0.39; allow up to 6.
        assert!(collisions <= 6, "collisions = {collisions}");
    }

    #[test]
    fn level_distribution_is_geometric() {
        let h = PairwiseHash::new(11);
        let n = 1u64 << 17;
        let mut ge1 = 0u64;
        let mut ge4 = 0u64;
        for x in 0..n {
            let l = h.level(x);
            if l >= 1 {
                ge1 += 1;
            }
            if l >= 4 {
                ge4 += 1;
            }
        }
        let f1 = ge1 as f64 / n as f64;
        let f4 = ge4 as f64 / n as f64;
        assert!((f1 - 0.5).abs() < 0.02, "P[level>=1] = {f1}");
        assert!((f4 - 0.0625).abs() < 0.01, "P[level>=4] = {f4}");
    }

    #[test]
    fn hash_unit_covers_unit_interval() {
        let h = PolyHash::new(2, 13);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for x in 0..10_000u64 {
            let u = h.hash_unit(x);
            assert!((0.0..1.0).contains(&u));
            min = min.min(u);
            max = max.max(u);
        }
        assert!(min < 0.01 && max > 0.99, "min {min} max {max}");
    }

    #[test]
    #[should_panic(expected = "independence")]
    fn zero_independence_rejected() {
        let _ = PolyHash::new(0, 1);
    }
}
