//! A fast `HashMap` configuration for `u64` keys.
//!
//! The default `std` hasher (SipHash 1-3) is DoS-resistant but slow for
//! integer keys; every exact-statistics pass and candidate table in this
//! workspace keys on `u64` item identifiers, so we use the bijective
//! [`fingerprint64`](crate::mix::fingerprint64) finalizer as the hasher —
//! the same approach as `rustc-hash`, implemented locally to keep the
//! dependency set closed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::mix::fingerprint64;

/// Hasher state: mixes every written word through `fingerprint64`.
#[derive(Default, Clone)]
pub struct FpHasher {
    state: u64,
}

impl Hasher for FpHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (rare for our integer keys): fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.state = fingerprint64(self.state ^ x);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// `BuildHasher` for [`FpHasher`].
pub type FpBuildHasher = BuildHasherDefault<FpHasher>;

/// `HashMap` keyed by integers with the fast fingerprint hasher.
pub type FpHashMap<K, V> = HashMap<K, V, FpBuildHasher>;

/// `HashSet` with the fast fingerprint hasher.
pub type FpHashSet<K> = HashSet<K, FpBuildHasher>;

/// Construct an empty [`FpHashMap`].
pub fn fp_hash_map<K, V>() -> FpHashMap<K, V> {
    FpHashMap::default()
}

/// Construct an empty [`FpHashSet`].
pub fn fp_hash_set<K>() -> FpHashSet<K> {
    FpHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FpHashMap<u64, u64> = fp_hash_map();
        for i in 0..10_000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn set_distinguishes_keys() {
        let mut s: FpHashSet<u64> = fp_hash_set();
        assert!(s.insert(1));
        assert!(s.insert(2));
        assert!(!s.insert(1));
        assert_eq!(s.len(), 2);
    }
}
