//! Distributed-monitor integration: several observation points each see a
//! Bernoulli sample of their own slice of the traffic; their summaries are
//! merged at a collector, which must answer as if one monitor had seen
//! everything. (The paper's router deployment, §1, generalised to the
//! multi-monitor setting its related work on distributed sampling
//! addresses.)

use subsampled_streams::core::{ApproxParams, SampledF0Estimator, SampledFkEstimator};
use subsampled_streams::stream::{BernoulliSampler, ExactStats, StreamGen, ZipfStream};

/// Split a stream across `sites` monitors, sample each independently,
/// merge, and compare against a single monitor over the whole stream.
#[test]
fn merged_fk_matches_single_monitor_semantics() {
    let n: u64 = 240_000;
    let p = 0.2;
    let stream = ZipfStream::new(5_000, 1.2).generate(n, 1);
    let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);

    for sites in [2usize, 3, 5] {
        let chunk = stream.len() / sites;
        let mut merged: Option<SampledFkEstimator<_>> = None;
        for s in 0..sites {
            let lo = s * chunk;
            let hi = if s + 1 == sites {
                stream.len()
            } else {
                lo + chunk
            };
            let mut est = SampledFkEstimator::exact(2, p);
            let mut sampler = BernoulliSampler::new(p, 100 + s as u64);
            sampler.sample_slice(&stream[lo..hi], |x| est.update(x));
            match merged.as_mut() {
                None => merged = Some(est),
                Some(m) => m.merge(&est),
            }
        }
        let merged = merged.unwrap();
        let err = ApproxParams::mult_error(merged.estimate(), truth);
        assert!(err < 1.1, "{sites} sites: error {err}");
    }
}

#[test]
fn merged_estimate_is_exactly_order_independent() {
    // Merging A into B and B into A must give identical estimates.
    let stream = ZipfStream::new(500, 1.0).generate(60_000, 2);
    let (left, right) = stream.split_at(30_000);
    let build = |part: &[u64], seed| {
        let mut est = SampledFkEstimator::exact(3, 0.3);
        let mut sampler = BernoulliSampler::new(0.3, seed);
        sampler.sample_slice(part, |x| est.update(x));
        est
    };
    let mut ab = build(left, 5);
    ab.merge(&build(right, 6));
    let mut ba = build(right, 6);
    ba.merge(&build(left, 5));
    assert!((ab.estimate() - ba.estimate()).abs() <= 1e-6 * ab.estimate());
    assert_eq!(ab.samples_seen(), ba.samples_seen());
}

#[test]
fn merged_f0_matches_union_semantics() {
    // Two sites with overlapping item populations: merged F0 must reflect
    // the union, not the sum.
    let n_each = 100_000u64;
    let p = 0.25;
    // Site A sees items [0, 60k), site B sees [40k, 100k): union = 100k.
    let site_a: Vec<u64> = (0..n_each).map(|i| i % 60_000).collect();
    let site_b: Vec<u64> = (0..n_each).map(|i| 40_000 + i % 60_000).collect();

    let build = |part: &[u64], sampler_seed| {
        // Same sketch seed everywhere: mergeability requires shared hashes.
        let mut est = SampledF0Estimator::new(p, 0.01, 777);
        let mut sampler = BernoulliSampler::new(p, sampler_seed);
        sampler.sample_slice(part, |x| est.update(x));
        est
    };
    let mut merged = build(&site_a, 11);
    merged.merge(&build(&site_b, 12));

    let union_f0 = 100_000.0;
    let err = ApproxParams::mult_error(merged.estimate(), union_f0);
    assert!(
        err <= merged.error_factor(),
        "union error {err} above ceiling {}",
        merged.error_factor()
    );
    // And it must be far below the naive sum (120k distinct-with-overlap).
    assert!(
        merged.estimate() < 2.0 * union_f0 / p.sqrt().min(1.0),
        "estimate {}",
        merged.estimate()
    );
}
