//! Property-based tests on the core invariants that hold for *every*
//! input, not just the sampled workloads.
//!
//! Dependency-free: each property is checked over a battery of
//! deterministic pseudo-random cases (the container ships no proptest;
//! seeds are fixed so failures reproduce exactly).

use subsampled_streams::core::stirling::{
    a_ell, beta_coefficients, epsilon_schedule, factorial_f64,
};
use subsampled_streams::core::{CollisionOracle, ExactCollisions, SampledFkEstimator};
use subsampled_streams::hash::{RngCore64, Xoshiro256pp};
use subsampled_streams::sketch::{CountMin, CountSketch, KmvSketch, MisraGries};
use subsampled_streams::stream::exact::{binom_f64, binom_u128};
use subsampled_streams::stream::{BernoulliSampler, ExactStats};

/// Number of random cases per property.
const CASES: u64 = 60;

/// A random stream of length in `[lo_len, hi_len)` over `[0, universe)`.
fn random_stream(rng: &mut Xoshiro256pp, universe: u64, lo_len: usize, hi_len: usize) -> Vec<u64> {
    let len = lo_len + rng.next_below((hi_len - lo_len) as u64) as usize;
    (0..len).map(|_| rng.next_below(universe)).collect()
}

/// Lemma 1 as a property: `F_ℓ = ℓ!·C_ℓ + Σ β^ℓ_i·F_i` for arbitrary
/// frequency vectors.
#[test]
fn falling_factorial_identity() {
    let mut rng = Xoshiro256pp::new(0xA1);
    for _ in 0..CASES {
        let freqs: Vec<u64> = (0..1 + rng.next_below(40))
            .map(|_| 1 + rng.next_below(199))
            .collect();
        let ell = 2 + rng.next_below(4) as u32;
        let f = |t: u32| -> f64 { freqs.iter().map(|&x| (x as f64).powi(t as i32)).sum() };
        let c_ell: f64 = freqs.iter().map(|&x| binom_f64(x, ell)).sum();
        let beta = beta_coefficients(ell);
        let mut rhs = factorial_f64(ell) * c_ell;
        for i in 1..ell {
            rhs += beta[i as usize - 1] as f64 * f(i);
        }
        let lhs = f(ell);
        assert!((lhs - rhs).abs() <= 1e-9 * lhs.max(1.0), "{lhs} vs {rhs}");
    }
}

/// Incremental collision counting equals the closed form on any stream.
#[test]
fn collision_oracle_incremental_equals_batch() {
    let mut rng = Xoshiro256pp::new(0xA2);
    for case in 0..CASES {
        let stream = random_stream(&mut rng, 50, 0, 500);
        let mut oracle = ExactCollisions::new(4);
        // Alternate ingestion paths: per-item and batched must agree.
        if case % 2 == 0 {
            for &x in &stream {
                oracle.update(x);
            }
        } else {
            for chunk in stream.chunks(97) {
                oracle.update_batch(chunk);
            }
        }
        let stats = ExactStats::from_stream(stream.iter().copied());
        for ell in 1..=4u32 {
            let exact = stats.collisions(ell);
            assert!((oracle.estimate(ell) - exact).abs() <= 1e-9 * exact.max(1.0));
        }
    }
}

/// Algorithm 1 at p = 1 is the exact moment, for any stream and k.
#[test]
fn algorithm1_is_exact_at_p_one() {
    let mut rng = Xoshiro256pp::new(0xA3);
    for _ in 0..CASES {
        let stream = random_stream(&mut rng, 100, 1, 400);
        let k = 2 + rng.next_below(4) as u32;
        let mut est = SampledFkEstimator::exact(k, 1.0);
        est.update_batch(&stream);
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(k);
        assert!((est.estimate() - truth).abs() <= 1e-6 * truth.max(1.0));
    }
}

/// CountMin never underestimates, on any stream.
#[test]
fn countmin_one_sided() {
    let mut rng = Xoshiro256pp::new(0xA4);
    for seed in 0..CASES {
        let stream = random_stream(&mut rng, 64, 0, 800);
        let mut cm = CountMin::new(3, 16, seed);
        let mut truth = std::collections::HashMap::new();
        for &x in &stream {
            cm.update(x, 1);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        for (&x, &f) in &truth {
            assert!(cm.query(x) >= f);
        }
    }
}

/// CountSketch is exactly linear: sketch(A) + sketch(B) = sketch(A·B).
#[test]
fn countsketch_linearity() {
    let mut rng = Xoshiro256pp::new(0xA5);
    for seed in 0..CASES {
        let a = random_stream(&mut rng, 64, 0, 200);
        let b = random_stream(&mut rng, 64, 0, 200);
        let mut sa = CountSketch::new(3, 32, seed);
        let mut sb = CountSketch::new(3, 32, seed);
        let mut sw = CountSketch::new(3, 32, seed);
        for &x in &a {
            sa.update(x, 1);
            sw.update(x, 1);
        }
        for &x in &b {
            sb.update(x, 1);
            sw.update(x, 1);
        }
        sa.merge(&sb);
        for x in 0..64u64 {
            assert_eq!(sa.query(x), sw.query(x));
        }
    }
}

/// Misra–Gries respects its deterministic error band on any stream.
#[test]
fn misra_gries_error_band() {
    let mut rng = Xoshiro256pp::new(0xA6);
    for _ in 0..CASES {
        let stream = random_stream(&mut rng, 32, 1, 800);
        let k = 1 + rng.next_below(15) as usize;
        let mut mg = MisraGries::new(k);
        let mut truth = std::collections::HashMap::new();
        for &x in &stream {
            mg.update(x);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        let bound = mg.error_bound();
        for (&x, &f) in &truth {
            let q = mg.query(x);
            assert!(q <= f);
            assert!(q as f64 >= f as f64 - bound);
        }
    }
}

/// KMV merge is union: merging in any split equals the whole.
#[test]
fn kmv_merge_is_union() {
    let mut rng = Xoshiro256pp::new(0xA7);
    for _ in 0..CASES {
        let stream = random_stream(&mut rng, 10_000, 0, 600);
        let cut = (rng.next_below(600) as usize).min(stream.len());
        let mut a = KmvSketch::new(32, 7);
        let mut b = KmvSketch::new(32, 7);
        let mut whole = KmvSketch::new(32, 7);
        for &x in &stream[..cut] {
            a.update(x);
            whole.update(x);
        }
        for &x in &stream[cut..] {
            b.update(x);
            whole.update(x);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), whole.estimate());
    }
}

/// The Bernoulli sampler keeps a subsequence: order preserved, length
/// ≤ n, and every kept element occurs in the original.
#[test]
fn sampler_yields_subsequence() {
    let mut rng = Xoshiro256pp::new(0xA8);
    for seed in 0..CASES {
        let stream = random_stream(&mut rng, 1000, 0, 500);
        let mut sampler = BernoulliSampler::new(0.3, seed);
        let kept = sampler.sample_to_vec(&stream);
        assert!(kept.len() <= stream.len());
        // Subsequence check via two-pointer scan.
        let mut it = stream.iter();
        for &k in &kept {
            assert!(it.any(|&x| x == k), "not a subsequence");
        }
    }
}

/// Exact binomial helpers agree wherever both are defined.
#[test]
fn binom_helpers_agree() {
    let mut rng = Xoshiro256pp::new(0xA9);
    for _ in 0..CASES * 4 {
        let f = rng.next_below(100_000);
        let l = rng.next_below(8) as u32;
        let exact = binom_u128(f, l).expect("no overflow in range") as f64;
        let approx = binom_f64(f, l);
        assert!((approx - exact).abs() <= 1e-9 * exact.max(1.0));
    }
}

/// The ε-schedule is positive, increasing, and ends at ε.
#[test]
fn epsilon_schedule_shape() {
    let mut rng = Xoshiro256pp::new(0xAA);
    for _ in 0..CASES {
        let k = 2 + rng.next_below(8) as u32;
        let eps = 0.01 + 0.89 * rng.next_f64();
        let sched = epsilon_schedule(k, eps);
        assert_eq!(sched.len(), k as usize);
        assert!((sched[k as usize - 1] - eps).abs() < 1e-15);
        for w in sched.windows(2) {
            assert!(w[0] > 0.0 && w[0] < w[1]);
        }
        // Consistency with A_ℓ: ε_{ℓ−1}·(A_ℓ+1) = ε_ℓ.
        for ell in 2..=k {
            let lhs = sched[ell as usize - 2] * (a_ell(ell) + 1.0);
            assert!((lhs - sched[ell as usize - 1]).abs() < 1e-12);
        }
    }
}

/// Entropy of any stream lies in [0, lg F_0].
#[test]
fn entropy_bounds() {
    let mut rng = Xoshiro256pp::new(0xAB);
    for _ in 0..CASES {
        let stream = random_stream(&mut rng, 64, 1, 500);
        let stats = ExactStats::from_stream(stream.iter().copied());
        let h = stats.entropy();
        assert!(h >= -1e-12);
        assert!(h <= (stats.f0() as f64).log2() + 1e-12);
    }
}

/// ExactCollisions merge equals concatenation on arbitrary splits.
#[test]
fn collision_merge_is_concatenation() {
    let mut rng = Xoshiro256pp::new(0xAC);
    for _ in 0..CASES {
        let a = random_stream(&mut rng, 40, 0, 300);
        let b = random_stream(&mut rng, 40, 0, 300);
        let mut oa = ExactCollisions::new(4);
        let mut ob = ExactCollisions::new(4);
        let mut whole = ExactCollisions::new(4);
        for &x in &a {
            oa.update(x);
            whole.update(x);
        }
        for &x in &b {
            ob.update(x);
            whole.update(x);
        }
        oa.merge(&ob);
        for ell in 1..=4u32 {
            let m = oa.estimate(ell);
            let w = whole.estimate(ell);
            assert!((m - w).abs() <= 1e-6 * w.max(1.0), "C_{ell}: {m} vs {w}");
        }
    }
}

/// Merging is commutative and associative for the exact collision oracle
/// (up to float association error) — the property that makes tree-shaped
/// collector topologies sound.
#[test]
fn collision_merge_commutative_associative() {
    let mut rng = Xoshiro256pp::new(0xAD);
    for _ in 0..CASES {
        let parts: Vec<Vec<u64>> = (0..3)
            .map(|_| random_stream(&mut rng, 30, 0, 200))
            .collect();
        let build = |part: &[u64]| {
            let mut o = ExactCollisions::new(4);
            for &x in part {
                o.update(x);
            }
            o
        };
        // Commutativity: A∪B == B∪A.
        let mut ab = build(&parts[0]);
        ab.merge(&build(&parts[1]));
        let mut ba = build(&parts[1]);
        ba.merge(&build(&parts[0]));
        for ell in 1..=4u32 {
            let x = ab.estimate(ell);
            let y = ba.estimate(ell);
            assert!(
                (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                "C_{ell}: {x} vs {y}"
            );
        }
        // Associativity: (A∪B)∪C == A∪(B∪C).
        let mut left = build(&parts[0]);
        left.merge(&build(&parts[1]));
        left.merge(&build(&parts[2]));
        let mut bc = build(&parts[1]);
        bc.merge(&build(&parts[2]));
        let mut right = build(&parts[0]);
        right.merge(&bc);
        for ell in 1..=4u32 {
            let x = left.estimate(ell);
            let y = right.estimate(ell);
            assert!(
                (x - y).abs() <= 1e-6 * x.abs().max(1.0),
                "C_{ell}: {x} vs {y}"
            );
        }
        assert_eq!(left.n(), right.n());
    }
}

/// The moments are monotone in ℓ for any stream (f_i ≥ 1 ⇒ F_ℓ ≤ F_{ℓ+1}),
/// so Algorithm 1 at p = 1 must produce a monotone φ̃ sequence.
#[test]
fn moment_monotonicity_at_p_one() {
    let mut rng = Xoshiro256pp::new(0xAE);
    for _ in 0..CASES {
        let stream = random_stream(&mut rng, 50, 1, 400);
        let mut est = SampledFkEstimator::exact(5, 1.0);
        est.update_batch(&stream);
        let phis = est.estimate_all();
        for w in phis.windows(2) {
            assert!(w[1] >= w[0] - 1e-9 * w[0].abs());
        }
    }
}

/// Frequency moments obey the Cauchy–Schwarz chain F_ℓ² ≤ F_{ℓ−1}·F_{ℓ+1}
/// (log-convexity) on every frequency vector — the inequality behind the
/// paper's F_ℓ^{1/ℓ} manipulations in Lemma 2.
#[test]
fn moments_are_log_convex() {
    let mut rng = Xoshiro256pp::new(0xAF);
    for _ in 0..CASES {
        let freqs: Vec<u64> = (0..1 + rng.next_below(60))
            .map(|_| 1 + rng.next_below(999))
            .collect();
        let f = |t: i32| -> f64 { freqs.iter().map(|&x| (x as f64).powi(t)).sum() };
        for ell in 1..5i32 {
            let lhs = f(ell) * f(ell);
            let rhs = f(ell - 1) * f(ell + 1);
            assert!(lhs <= rhs * (1.0 + 1e-12), "ℓ={ell}: {lhs} > {rhs}");
        }
    }
}

/// binom_pmf is a genuine pmf for arbitrary parameters.
#[test]
fn binom_pmf_normalised() {
    use subsampled_streams::core::numeric::binom_pmf;
    let mut rng = Xoshiro256pp::new(0xB0);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(299);
        let p = 0.01 + 0.98 * rng.next_f64();
        let total: f64 = (0..=n).map(|k| binom_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let mean: f64 = (0..=n).map(|k| k as f64 * binom_pmf(n, k, p)).sum();
        assert!((mean - n as f64 * p).abs() < 1e-6 * (n as f64 * p));
    }
}
