//! Property-based tests (proptest) on the core invariants that hold for
//! *every* input, not just the sampled workloads.

use proptest::collection::vec;
use proptest::prelude::*;

use subsampled_streams::core::stirling::{
    a_ell, beta_coefficients, epsilon_schedule, factorial_f64,
};
use subsampled_streams::core::{CollisionOracle, ExactCollisions, SampledFkEstimator};
use subsampled_streams::sketch::{CountMin, CountSketch, KmvSketch, MisraGries};
use subsampled_streams::stream::exact::{binom_f64, binom_u128};
use subsampled_streams::stream::{BernoulliSampler, ExactStats};

proptest! {
    /// Lemma 1 as a property: F_ℓ = ℓ!·C_ℓ + Σ β^ℓ_i·F_i for arbitrary
    /// frequency vectors.
    #[test]
    fn falling_factorial_identity(freqs in vec(1u64..200, 1..40), ell in 2u32..6) {
        let f = |t: u32| -> f64 {
            freqs.iter().map(|&x| (x as f64).powi(t as i32)).sum()
        };
        let c_ell: f64 = freqs.iter().map(|&x| binom_f64(x, ell)).sum();
        let beta = beta_coefficients(ell);
        let mut rhs = factorial_f64(ell) * c_ell;
        for i in 1..ell {
            rhs += beta[i as usize - 1] as f64 * f(i);
        }
        let lhs = f(ell);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.max(1.0), "{lhs} vs {rhs}");
    }

    /// Incremental collision counting equals the closed form on any stream.
    #[test]
    fn collision_oracle_incremental_equals_batch(stream in vec(0u64..50, 0..500)) {
        let mut oracle = ExactCollisions::new(4);
        for &x in &stream {
            oracle.update(x);
        }
        let stats = ExactStats::from_stream(stream.iter().copied());
        for ell in 1..=4u32 {
            let exact = stats.collisions(ell);
            prop_assert!(
                (oracle.estimate(ell) - exact).abs() <= 1e-9 * exact.max(1.0)
            );
        }
    }

    /// Algorithm 1 at p = 1 is the exact moment, for any stream and k.
    #[test]
    fn algorithm1_is_exact_at_p_one(stream in vec(0u64..100, 1..400), k in 2u32..6) {
        let mut est = SampledFkEstimator::exact(k, 1.0);
        for &x in &stream {
            est.update(x);
        }
        let truth = ExactStats::from_stream(stream.iter().copied()).fk(k);
        prop_assert!((est.estimate() - truth).abs() <= 1e-6 * truth.max(1.0));
    }

    /// CountMin never underestimates, on any stream.
    #[test]
    fn countmin_one_sided(stream in vec(0u64..64, 0..800), seed in 0u64..100) {
        let mut cm = CountMin::new(3, 16, seed);
        let mut truth = std::collections::HashMap::new();
        for &x in &stream {
            cm.update(x, 1);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        for (&x, &f) in &truth {
            prop_assert!(cm.query(x) >= f);
        }
    }

    /// CountSketch is exactly linear: sketch(A) + sketch(B) = sketch(A·B).
    #[test]
    fn countsketch_linearity(
        a in vec(0u64..64, 0..200),
        b in vec(0u64..64, 0..200),
        seed in 0u64..100,
    ) {
        let mut sa = CountSketch::new(3, 32, seed);
        let mut sb = CountSketch::new(3, 32, seed);
        let mut sw = CountSketch::new(3, 32, seed);
        for &x in &a {
            sa.update(x, 1);
            sw.update(x, 1);
        }
        for &x in &b {
            sb.update(x, 1);
            sw.update(x, 1);
        }
        sa.merge(&sb);
        for x in 0..64u64 {
            prop_assert_eq!(sa.query(x), sw.query(x));
        }
    }

    /// Misra–Gries respects its deterministic error band on any stream.
    #[test]
    fn misra_gries_error_band(stream in vec(0u64..32, 1..800), k in 1usize..16) {
        let mut mg = MisraGries::new(k);
        let mut truth = std::collections::HashMap::new();
        for &x in &stream {
            mg.update(x);
            *truth.entry(x).or_insert(0u64) += 1;
        }
        let bound = mg.error_bound();
        for (&x, &f) in &truth {
            let q = mg.query(x);
            prop_assert!(q <= f);
            prop_assert!(q as f64 >= f as f64 - bound);
        }
    }

    /// KMV merge is union: merging in any split equals the whole.
    #[test]
    fn kmv_merge_is_union(stream in vec(0u64..10_000, 0..600), cut in 0usize..600) {
        let cut = cut.min(stream.len());
        let mut a = KmvSketch::new(32, 7);
        let mut b = KmvSketch::new(32, 7);
        let mut whole = KmvSketch::new(32, 7);
        for &x in &stream[..cut] {
            a.update(x);
            whole.update(x);
        }
        for &x in &stream[cut..] {
            b.update(x);
            whole.update(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.estimate(), whole.estimate());
    }

    /// The Bernoulli sampler keeps a subsequence: order preserved, length
    /// ≤ n, and every kept element occurs in the original.
    #[test]
    fn sampler_yields_subsequence(stream in vec(0u64..1000, 0..500), seed in 0u64..50) {
        let mut sampler = BernoulliSampler::new(0.3, seed);
        let kept = sampler.sample_to_vec(&stream);
        prop_assert!(kept.len() <= stream.len());
        // Subsequence check via two-pointer scan.
        let mut it = stream.iter();
        for &k in &kept {
            prop_assert!(it.any(|&x| x == k), "not a subsequence");
        }
    }

    /// Exact binomial helpers agree wherever both are defined.
    #[test]
    fn binom_helpers_agree(f in 0u64..100_000, l in 0u32..8) {
        let exact = binom_u128(f, l).expect("no overflow in range") as f64;
        let approx = binom_f64(f, l);
        prop_assert!((approx - exact).abs() <= 1e-9 * exact.max(1.0));
    }

    /// The ε-schedule is positive, increasing, and ends at ε.
    #[test]
    fn epsilon_schedule_shape(k in 2u32..10, eps in 0.01f64..0.9) {
        let sched = epsilon_schedule(k, eps);
        prop_assert_eq!(sched.len(), k as usize);
        prop_assert!((sched[k as usize - 1] - eps).abs() < 1e-15);
        for w in sched.windows(2) {
            prop_assert!(w[0] > 0.0 && w[0] < w[1]);
        }
        // Consistency with A_ℓ: ε_{ℓ−1}·(A_ℓ+1) = ε_ℓ.
        for ell in 2..=k {
            let lhs = sched[ell as usize - 2] * (a_ell(ell) + 1.0);
            prop_assert!((lhs - sched[ell as usize - 1]).abs() < 1e-12);
        }
    }

    /// Entropy of any stream lies in [0, lg F_0] and the exact-stats value
    /// is consistent with direct computation.
    #[test]
    fn entropy_bounds(stream in vec(0u64..64, 1..500)) {
        let stats = ExactStats::from_stream(stream.iter().copied());
        let h = stats.entropy();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (stats.f0() as f64).log2() + 1e-12);
    }

    /// ExactCollisions merge equals concatenation on arbitrary splits.
    #[test]
    fn collision_merge_is_concatenation(
        a in vec(0u64..40, 0..300),
        b in vec(0u64..40, 0..300),
    ) {
        let mut oa = ExactCollisions::new(4);
        let mut ob = ExactCollisions::new(4);
        let mut whole = ExactCollisions::new(4);
        for &x in &a {
            oa.update(x);
            whole.update(x);
        }
        for &x in &b {
            ob.update(x);
            whole.update(x);
        }
        oa.merge(&ob);
        for ell in 1..=4u32 {
            let m = oa.estimate(ell);
            let w = whole.estimate(ell);
            prop_assert!((m - w).abs() <= 1e-6 * w.max(1.0), "C_{}: {} vs {}", ell, m, w);
        }
    }

    /// The moments are monotone in ℓ for any stream (f_i ≥ 1 ⇒ F_ℓ ≤ F_{ℓ+1}),
    /// so Algorithm 1 at p = 1 must produce a monotone φ̃ sequence.
    #[test]
    fn moment_monotonicity_at_p_one(stream in vec(0u64..50, 1..400)) {
        let mut est = SampledFkEstimator::exact(5, 1.0);
        for &x in &stream {
            est.update(x);
        }
        let phis = est.estimate_all();
        for w in phis.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-9 * w[0].abs());
        }
    }

    /// Frequency moments obey the Cauchy–Schwarz chain F_ℓ² ≤ F_{ℓ−1}·F_{ℓ+1}
    /// (log-convexity) on every frequency vector — the inequality behind the
    /// paper's F_ℓ^{1/ℓ} manipulations in Lemma 2.
    #[test]
    fn moments_are_log_convex(freqs in vec(1u64..1000, 1..60)) {
        let f = |t: i32| -> f64 {
            freqs.iter().map(|&x| (x as f64).powi(t)).sum()
        };
        for ell in 1..5i32 {
            let lhs = f(ell) * f(ell);
            let rhs = f(ell - 1) * f(ell + 1);
            prop_assert!(lhs <= rhs * (1.0 + 1e-12), "ℓ={}: {} > {}", ell, lhs, rhs);
        }
    }

    /// binom_pmf is a genuine pmf for arbitrary parameters.
    #[test]
    fn binom_pmf_normalised(n in 1u64..300, p in 0.01f64..0.99) {
        use subsampled_streams::core::numeric::binom_pmf;
        let total: f64 = (0..=n).map(|k| binom_pmf(n, k, p)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mean: f64 = (0..=n).map(|k| k as f64 * binom_pmf(n, k, p)).sum();
        prop_assert!((mean - n as f64 * p).abs() < 1e-6 * (n as f64 * p));
    }
}
