//! Integration tests for the extension modules: flow-size unfolding,
//! adaptive rates, and the alternative sampling models — wired through the
//! facade crate against realistic traces.

use subsampled_streams::core::{
    AdaptiveF2Estimator, FlowSizeUnfolder, SampledFlowHistogram, TargetCollisionsPolicy,
};
use subsampled_streams::hash::{RngCore64, Xoshiro256pp};
use subsampled_streams::sketch::PrioritySampler;
use subsampled_streams::stream::{
    BernoulliSampler, ExactStats, NetFlowStream, SampleAndHold, StreamGen, ZipfStream,
};

#[test]
fn flow_unfolding_on_netflow_trace() {
    let trace = NetFlowStream::new(1 << 20, 1.3, 500).generate(200_000, 1);
    let exact = ExactStats::from_stream(trace.iter().copied());
    let p = 0.25;

    let mut hist = SampledFlowHistogram::new();
    let mut sampler = BernoulliSampler::new(p, 2);
    sampler.sample_slice(&trace, |x| hist.update(x));

    let est = FlowSizeUnfolder::new(p, 600, 300).unfold(&hist);
    let true_flows = exact.f0() as f64;
    let rel = (est.total_flows() - true_flows).abs() / true_flows;
    assert!(rel < 0.15, "flows {} vs {true_flows}", est.total_flows());

    // Total packets must reconcile with the F1 identity.
    let rel_pkts = (est.total_packets() - 200_000.0).abs() / 200_000.0;
    assert!(rel_pkts < 0.1, "packets {}", est.total_packets());

    // Tail mass: fraction of flows of size >= 10.
    let true_tail = exact.iter().filter(|&(_, f)| f >= 10).count() as f64 / true_flows;
    assert!(
        (est.ccdf(10) - true_tail).abs() < 0.1,
        "tail {} vs {true_tail}",
        est.ccdf(10)
    );
}

#[test]
fn adaptive_policy_end_to_end() {
    let stream = ZipfStream::new(3_000, 1.4).generate(300_000, 3);
    let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
    let policy = TargetCollisionsPolicy {
        p_high: 0.25,
        p_low: 0.025,
        target: truth / 100.0,
    };
    let mut est = AdaptiveF2Estimator::new(policy.p_high);
    let mut rng = Xoshiro256pp::new(4);
    for &x in &stream {
        let r = policy.rate_for(&est);
        if r != est.current_rate() {
            est.set_rate(r);
        }
        if rng.next_bool(est.current_rate()) {
            est.update(x);
        }
    }
    // Throttled well below the fixed-rate sample volume…
    assert!(
        est.samples_seen() < 300_000 / 8,
        "saw {} samples",
        est.samples_seen()
    );
    // …while keeping a usable estimate.
    let rel = (est.estimate() - truth).abs() / truth;
    assert!(rel < 0.15, "rel err {rel}");
    assert_eq!(est.current_rate(), policy.p_low, "policy never throttled");
}

#[test]
fn sample_and_hold_vs_bernoulli_on_elephants() {
    // Same budget: sample-and-hold estimates elephant sizes strictly
    // better than Bernoulli count-scaling on a trace with a clear head.
    let trace = {
        let mut t = ZipfStream::new(10_000, 1.6).generate(300_000, 5);
        // ensure one giant flow
        t.extend(std::iter::repeat_n(42u64, 30_000));
        t
    };
    let exact = ExactStats::from_stream(trace.iter().copied());
    let p = 0.01;

    let mut sh = SampleAndHold::new(p, 6);
    for &x in &trace {
        sh.update(x);
    }
    let sh_err = (sh.estimate(42) - exact.freq(42) as f64).abs() / exact.freq(42) as f64;

    let mut counts = 0u64;
    let mut sampler = BernoulliSampler::new(p, 7);
    sampler.sample_slice(&trace, |x| {
        if x == 42 {
            counts += 1;
        }
    });
    let bern_err = (counts as f64 / p - exact.freq(42) as f64).abs() / exact.freq(42) as f64;

    assert!(sh_err < 0.01, "sample-and-hold err {sh_err}");
    // Bernoulli's relative error on a single flow of size f concentrates
    // at ~1/sqrt(p·f) ≈ 5.8%; no strict dominance asserted per-seed, but
    // S&H must be at least as good here.
    assert!(sh_err <= bern_err + 1e-9, "sh {sh_err} vs bern {bern_err}");
}

#[test]
fn priority_sampler_subset_sums_on_flow_bytes() {
    // Weighted-stream substrate: estimate the traffic share of a flow
    // subset from a 128-entry priority sample.
    let mut rng = Xoshiro256pp::new(8);
    let flows: Vec<(u64, f64)> = (0..20_000u64)
        .map(|i| (i, 1.0 + rng.next_below(1000) as f64))
        .collect();
    let truth: f64 = flows
        .iter()
        .filter(|&&(i, _)| i % 10 == 0)
        .map(|&(_, w)| w)
        .sum();
    let mut total_err = 0.0;
    let trials = 20;
    for seed in 0..trials {
        let mut ps = PrioritySampler::new(512, seed);
        for &(i, w) in &flows {
            ps.offer(i, w);
        }
        total_err += (ps.estimate_subset_sum(|i| i % 10 == 0) - truth).abs() / truth;
    }
    // ~51 of the 512 kept entries land in the subset ⇒ per-trial relative
    // sd ≈ 1/√51 ≈ 14%; the mean absolute error sits just below that.
    let mean_err = total_err / trials as f64;
    assert!(mean_err < 0.2, "mean rel err {mean_err}");
}

#[test]
fn unfolding_respects_f1_identity_under_all_rates() {
    // Whatever the distribution, unfolded total packets ≈ observed/p.
    let trace = NetFlowStream::new(1 << 16, 1.0, 200).generate(50_000, 9);
    for &p in &[0.5f64, 0.1] {
        let mut hist = SampledFlowHistogram::new();
        let mut sampler = BernoulliSampler::new(p, 10);
        sampler.sample_slice(&trace, |x| hist.update(x));
        let est = FlowSizeUnfolder::new(p, 256, 200).unfold(&hist);
        let scaled = hist.observed_packets() as f64 / p;
        let rel = (est.total_packets() - scaled).abs() / scaled;
        assert!(rel < 0.05, "p={p}: {} vs {scaled}", est.total_packets());
    }
}
