//! Transport integration battery over real loopback sockets: the
//! end-to-end acceptance path (K sites → TCP → collector, bitwise equal
//! to the in-memory merge) plus the failure drills — mid-stream
//! disconnect with reconnect-and-resume, corrupt-frame injection with
//! per-reason accounting, duplicate suppression, and the
//! version-mismatch handshake refusal.

use std::net::TcpStream;
use std::time::Duration;

use subsampled_streams::codec::WireCodec;
use subsampled_streams::core::{Monitor, MonitorBuilder, Statistic};
use subsampled_streams::stream::{BernoulliSampler, StreamGen, ZipfStream};
use subsampled_streams::transport::{
    read_frame, write_frame, AckStatus, ClientConfig, CollectorServer, Hello, HelloAck,
    PushOutcome, RejectReason, RetryPolicy, ServerConfig, SiteClient, SnapshotAck, SnapshotPush,
    TransportError, TRANSPORT_PROTO_VERSION,
};

const P: f64 = 0.2;

/// The shared builder configuration every site and the collector use —
/// mergeability requires identical sketch seeds.
fn prototype() -> Monitor {
    MonitorBuilder::with_seed(P, 4242)
        .f0(0.05)
        .fk(2)
        .entropy(512)
        .build()
}

fn test_server_config() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(5),
        handshake_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn test_client_config(site_id: u64) -> ClientConfig {
    let mut cfg = ClientConfig::new(site_id, format!("site-{site_id}"));
    cfg.retry = RetryPolicy {
        max_attempts: 6,
        initial_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
    };
    cfg.ack_timeout = Duration::from_secs(5);
    cfg
}

/// Build one site's monitor over its (disjoint) partition of the
/// stream and return it with its checkpoint bytes.
fn site_monitor(partition: &[u64], sampler_seed: u64) -> (Monitor, Vec<u8>) {
    let mut monitor = prototype();
    let mut sampler = BernoulliSampler::new(P, sampler_seed);
    sampler.sample_batches(partition, 1024, |chunk| monitor.update_batch(chunk));
    let wire = monitor.checkpoint().expect("registered estimators decode");
    (monitor, wire)
}

/// Acceptance: K site threads stream disjoint partitions, ship their
/// snapshots over real TCP, and the collector's merged estimates are
/// bitwise-equal to an in-memory `Monitor::try_merge` of the same
/// snapshots (same ascending-site fold order).
#[test]
fn sites_over_tcp_merge_bitwise_equal_to_in_memory() {
    let sites = 3usize;
    let stream = ZipfStream::new(2_000, 1.2).generate(90_000, 17);
    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let addr = server.local_addr();

    let mut handles = Vec::new();
    let chunk = stream.len() / sites;
    for s in 0..sites {
        let lo = s * chunk;
        let hi = if s + 1 == sites {
            stream.len()
        } else {
            lo + chunk
        };
        let partition = stream[lo..hi].to_vec();
        handles.push(std::thread::spawn(move || {
            let (_, wire) = site_monitor(&partition, 100 + s as u64);
            let mut client =
                SiteClient::connect(addr, test_client_config(s as u64)).expect("connect");
            let outcome = client.push_wire(wire.clone()).expect("push");
            assert_eq!(outcome, PushOutcome::Accepted);
            client.close();
            wire
        }));
    }
    let wires: Vec<Vec<u8>> = handles
        .into_iter()
        .map(|h| h.join().expect("site"))
        .collect();

    let (merged, stats) = server.shutdown();
    assert_eq!(stats.snapshots_accepted, sites as u64);
    assert_eq!(stats.rejected_total(), 0);
    assert_eq!(stats.sites.len(), sites);
    assert!(stats.bytes_in > wires.iter().map(|w| w.len() as u64).sum::<u64>());

    // In-memory reference: restore the same snapshot bytes and fold
    // them in the same ascending-site order.
    let mut reference = prototype();
    for wire in &wires {
        let site = Monitor::restore(wire).expect("restore");
        reference.try_merge(&site).expect("same builder config");
    }
    assert_eq!(merged.samples_seen(), reference.samples_seen());
    for ((la, ea), (lb, eb)) in merged.report().iter().zip(&reference.report()) {
        assert_eq!(la, lb);
        assert_eq!(
            ea.value.to_bits(),
            eb.value.to_bits(),
            "{la}: TCP-merged {} vs in-memory {}",
            ea.value,
            eb.value
        );
    }
    assert!(merged.estimate(Statistic::Fk(2)).unwrap().value > 0.0);
}

/// A connection dropped mid-run (no goodbye) is recovered by the next
/// push: reconnect, re-handshake, resume the sequence — no snapshot
/// lost, none double-counted.
#[test]
fn mid_stream_disconnect_reconnects_and_resumes() {
    let stream = ZipfStream::new(500, 1.1).generate(40_000, 23);
    let (first_half, second_half) = stream.split_at(stream.len() / 2);
    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");

    let mut monitor = prototype();
    let mut sampler = BernoulliSampler::new(P, 7);
    let mut client =
        SiteClient::connect(server.local_addr(), test_client_config(1)).expect("connect");

    // First checkpoint lands normally.
    sampler.sample_batches(first_half, 1024, |c| monitor.update_batch(c));
    assert_eq!(
        client.push_monitor(&monitor).expect("push 1"),
        PushOutcome::Accepted
    );
    let after_first = monitor.samples_seen();

    // The cable gets pulled (no goodbye)…
    client.drop_connection();
    assert!(!client.is_connected());

    // …the site keeps monitoring, and the next push transparently
    // reconnects and resumes with the next sequence number.
    sampler.sample_batches(second_half, 1024, |c| monitor.update_batch(c));
    assert_eq!(
        client.push_monitor(&monitor).expect("push 2"),
        PushOutcome::Accepted
    );
    assert_eq!(client.stats().reconnects, 1);
    assert_eq!(client.next_seq(), 2);
    client.close();

    let (merged, stats) = server.shutdown();
    assert_eq!(stats.snapshots_accepted, 2);
    assert!(stats.disconnects >= 1, "the drop must be visible");
    assert_eq!(stats.rejected_total(), 0);
    // Cumulative snapshots: the collector holds the *latest* state —
    // everything the site saw, once.
    assert_eq!(merged.samples_seen(), monitor.samples_seen());
    assert!(monitor.samples_seen() > after_first);
    let row = &stats.sites[0];
    assert_eq!(row.site_id, 1);
    assert_eq!(row.last_seq, Some(1));
    assert_eq!(row.snapshots_accepted, 2);
}

/// Hand-rolled peer: handshake, then a push re-sent with the same
/// sequence number (the retry-after-lost-ack shape). The second copy is
/// answered `Duplicate` and merged zero times.
#[test]
fn duplicate_sequence_is_acked_but_not_double_counted() {
    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    let hello = Hello {
        proto_version: TRANSPORT_PROTO_VERSION,
        site_id: 5,
        site_name: "raw-site".to_string(),
        features: 0,
    };
    write_frame(&mut stream, &hello.encode_framed()).expect("hello");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("hello ack");
    assert!(HelloAck::decode_framed(&bytes).expect("decode").accepted);

    let (site, wire) = site_monitor(&ZipfStream::new(300, 1.0).generate(20_000, 3), 11);
    let push = SnapshotPush {
        site_id: 5,
        seq: 0,
        snapshot: wire,
    };
    let frame = push.encode_framed();
    for (round, expected) in [(1u32, AckStatus::Accepted), (2, AckStatus::Duplicate)] {
        write_frame(&mut stream, &frame).expect("push");
        let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("ack");
        let ack = SnapshotAck::decode_framed(&bytes).expect("decode ack");
        assert_eq!(ack.seq, 0);
        assert_eq!(ack.status, expected, "round {round}");
    }

    // The reserved sequence (u64::MAX = SEQ_UNKNOWN, the undecodable-
    // payload ack sentinel) is rejected instead of wedging the dedup
    // window at the top of the range.
    let push = SnapshotPush {
        site_id: 5,
        seq: u64::MAX,
        snapshot: frame[..0].to_vec(),
    };
    write_frame(&mut stream, &push.encode_framed()).expect("reserved-seq push");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("nack");
    let ack = SnapshotAck::decode_framed(&bytes).expect("decode nack");
    assert_eq!(ack.status, AckStatus::Rejected);
    assert!(ack.reason.contains("reserved"), "reason: {}", ack.reason);

    let (merged, stats) = server.shutdown();
    assert_eq!(stats.snapshots_accepted, 1);
    assert_eq!(stats.snapshots_duplicate, 1);
    assert_eq!(stats.rejected(RejectReason::InvalidPayload), 1);
    assert_eq!(
        merged.samples_seen(),
        site.samples_seen(),
        "merged exactly once"
    );
}

/// Corrupt frames are rejected under the right reason counter while the
/// connection keeps serving, and an incompatible (but well-formed)
/// snapshot is rejected as merge-incompatible — never a panic, never a
/// poisoned collector.
#[test]
fn corruption_and_incompatibility_increment_reasons_and_keep_serving() {
    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    let hello = Hello {
        proto_version: TRANSPORT_PROTO_VERSION,
        site_id: 9,
        site_name: "chaos-site".to_string(),
        features: 0,
    };
    write_frame(&mut stream, &hello.encode_framed()).expect("hello");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("hello ack");
    assert!(HelloAck::decode_framed(&bytes).expect("decode").accepted);

    let (site, wire) = site_monitor(&ZipfStream::new(300, 1.0).generate(20_000, 5), 13);

    // 1) Outer corruption: flip one byte of the transport frame's
    //    payload — the frame checksum catches it; the sequence number
    //    is unknowable, so the NACK carries SEQ_UNKNOWN.
    let good = SnapshotPush {
        site_id: 9,
        seq: 0,
        snapshot: wire.clone(),
    }
    .encode_framed();
    let mut corrupt_outer = good.clone();
    let n = corrupt_outer.len();
    corrupt_outer[n / 2] ^= 0x40;
    write_frame(&mut stream, &corrupt_outer).expect("send corrupt");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("nack");
    let ack = SnapshotAck::decode_framed(&bytes).expect("decode nack");
    assert_eq!(ack.status, AckStatus::Rejected);
    assert!(ack.reason.contains("checksum"), "reason: {}", ack.reason);

    // 2) Inner corruption: the transport frame is intact but the nested
    //    monitor checkpoint is damaged — the snapshot's own checksum
    //    catches it, and this time the NACK names the sequence.
    let mut bad_snapshot = wire.clone();
    let m = bad_snapshot.len();
    bad_snapshot[m - 3] ^= 0x01;
    let push = SnapshotPush {
        site_id: 9,
        seq: 0,
        snapshot: bad_snapshot,
    };
    write_frame(&mut stream, &push.encode_framed()).expect("send inner-corrupt");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("nack");
    let ack = SnapshotAck::decode_framed(&bytes).expect("decode nack");
    assert_eq!(ack.status, AckStatus::Rejected);
    assert_eq!(ack.seq, 0);

    // 3) Incompatible snapshot: well-formed bytes from a *different*
    //    builder configuration cannot merge — typed rejection, not a
    //    panic.
    let mut foreign = MonitorBuilder::with_seed(P, 4242).f0(0.05).build();
    foreign.update_batch(&[1, 2, 3]);
    let push = SnapshotPush {
        site_id: 9,
        seq: 0,
        snapshot: foreign.checkpoint().expect("checkpoint"),
    };
    write_frame(&mut stream, &push.encode_framed()).expect("send incompatible");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("nack");
    let ack = SnapshotAck::decode_framed(&bytes).expect("decode nack");
    assert_eq!(ack.status, AckStatus::Rejected);
    assert!(
        ack.reason.contains("merge"),
        "reason should explain the incompatibility: {}",
        ack.reason
    );

    // 4) The connection is still alive: the good push now lands.
    write_frame(&mut stream, &good).expect("send good");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("ack");
    let ack = SnapshotAck::decode_framed(&bytes).expect("decode ack");
    assert_eq!(ack.status, AckStatus::Accepted);

    let (merged, stats) = server.shutdown();
    assert_eq!(stats.rejected(RejectReason::ChecksumMismatch), 2);
    assert_eq!(stats.rejected(RejectReason::MergeIncompatible), 1);
    assert_eq!(stats.rejected_total(), 3);
    assert_eq!(stats.snapshots_accepted, 1);
    assert_eq!(merged.samples_seen(), site.samples_seen());
}

/// Handshake refusals: a frame stamped with a foreign wire version is
/// refused with a typed counter bump, and so is a well-formed hello
/// speaking a foreign *transport* protocol version.
#[test]
fn version_mismatch_handshakes_are_refused() {
    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");

    // Foreign wire version: flip the version field of an otherwise
    // valid hello frame (byte 4 of the envelope; the payload checksum
    // does not cover the header, so only the version check can fire).
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut frame = Hello {
        proto_version: TRANSPORT_PROTO_VERSION,
        site_id: 2,
        site_name: "stale-wire".to_string(),
        features: 0,
    }
    .encode_framed();
    frame[4] ^= 0x07;
    write_frame(&mut stream, &frame).expect("send stale hello");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("refusal");
    let ack = HelloAck::decode_framed(&bytes).expect("decode refusal");
    assert!(!ack.accepted);
    assert!(
        ack.reason.contains("unsupported wire version"),
        "reason: {}",
        ack.reason
    );
    // The collector closes after refusing.
    assert!(matches!(
        read_frame(&mut stream, 1 << 20),
        Err(TransportError::Closed) | Err(TransportError::Io(_))
    ));

    // Foreign transport protocol version inside a valid frame.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let hello = Hello {
        proto_version: 99,
        site_id: 3,
        site_name: "time-traveller".to_string(),
        features: 0,
    };
    write_frame(&mut stream, &hello.encode_framed()).expect("send future hello");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("refusal");
    let ack = HelloAck::decode_framed(&bytes).expect("decode refusal");
    assert!(!ack.accepted);
    assert!(ack.reason.contains("transport protocol version 99"));

    let (_, stats) = server.shutdown();
    assert_eq!(stats.rejected(RejectReason::UnsupportedVersion), 1);
    assert_eq!(stats.rejected(RejectReason::HandshakeRefused), 1);
    assert_eq!(stats.snapshots_accepted, 0);
    assert!(stats.sites.is_empty(), "refused sites are never registered");
}

/// A *restarted* site (fresh client, sequence counter back at 0, same
/// site id) must not have its new snapshots swallowed by the
/// collector's dedup: the hello ack carries the collector's next
/// expected sequence and the client fast-forwards to it.
#[test]
fn restarted_site_fast_forwards_past_the_dedup_window() {
    let stream = ZipfStream::new(400, 1.1).generate(30_000, 29);
    let (before, after) = stream.split_at(stream.len() / 2);
    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let addr = server.local_addr();

    // First life of the site: two pushes (seq 0 and 1), then the
    // process dies without ceremony.
    let mut monitor = prototype();
    let mut sampler = BernoulliSampler::new(P, 41);
    let mut client = SiteClient::connect(addr, test_client_config(6)).expect("connect");
    sampler.sample_batches(before, 1024, |c| monitor.update_batch(c));
    client.push_monitor(&monitor).expect("push 0");
    client.push_monitor(&monitor).expect("push 1");
    drop(client);

    // Second life: a brand-new client for the same site id. The
    // handshake must fast-forward its sequence past the server's
    // high-water mark...
    let mut client = SiteClient::connect(addr, test_client_config(6)).expect("reconnect");
    assert_eq!(
        client.next_seq(),
        2,
        "hello ack must resume the sequence, not restart at 0"
    );
    // ...so the post-restart snapshot is Accepted, not swallowed as a
    // duplicate.
    sampler.sample_batches(after, 1024, |c| monitor.update_batch(c));
    assert_eq!(
        client.push_monitor(&monitor).expect("post-restart push"),
        PushOutcome::Accepted
    );
    client.close();

    let (merged, stats) = server.shutdown();
    assert_eq!(stats.snapshots_accepted, 3);
    assert_eq!(stats.snapshots_duplicate, 0);
    assert_eq!(
        merged.samples_seen(),
        monitor.samples_seen(),
        "the collector must hold the post-restart state"
    );
}

/// Shutdown must complete even while a peer is stalled mid-frame:
/// handler reads abort at the next poll tick instead of waiting for
/// the rest of a frame that will never arrive.
#[test]
fn shutdown_completes_with_a_peer_stalled_mid_frame() {
    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let addr = server.local_addr();

    // Complete a handshake, then send only part of a push frame and
    // freeze (socket stays open, no more bytes, no close).
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let hello = Hello {
        proto_version: TRANSPORT_PROTO_VERSION,
        site_id: 4,
        site_name: "stalled".to_string(),
        features: 0,
    };
    write_frame(&mut stream, &hello.encode_framed()).expect("hello");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("hello ack");
    assert!(HelloAck::decode_framed(&bytes).expect("decode").accepted);
    let push = SnapshotPush {
        site_id: 4,
        seq: 0,
        snapshot: vec![0u8; 4096],
    }
    .encode_framed();
    write_frame(&mut stream, &push[..push.len() / 2]).expect("partial frame");

    // Shutdown on a helper thread with a watchdog: the old behavior
    // (wait for the in-flight frame to finish, with no deadline) hangs
    // here forever.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let (_, stats) = server.shutdown();
        tx.send(stats).expect("send stats");
    });
    let stats = rx
        .recv_timeout(Duration::from_secs(10))
        .expect("shutdown must complete despite the stalled peer");
    assert_eq!(stats.snapshots_accepted, 0);
    drop(stream);
}

/// Steady-state pushes through the `SiteClient` travel as deltas once
/// the first full snapshot landed, cutting wire bytes while the merged
/// result stays bitwise-identical to an in-memory merge.
#[test]
fn steady_state_pushes_travel_as_deltas_and_merge_identically() {
    let stream = ZipfStream::new(2_000, 1.2).generate(60_000, 31);
    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let mut client =
        SiteClient::connect(server.local_addr(), test_client_config(1)).expect("connect");

    // Warm-up to a saturated state (the steady-state regime: the key
    // sets are stable, increments only nudge counters), push the full
    // base, then push after each small increment.
    let (warmup, rest) = stream.split_at(stream.len() * 3 / 4);
    let increments: Vec<&[u64]> = rest.chunks(rest.len() / 4).collect();
    let mut monitor = prototype();
    let mut sampler = BernoulliSampler::new(P, 37);
    sampler.sample_batches(warmup, 1024, |c| monitor.update_batch(c));
    assert_eq!(
        client
            .push_wire(monitor.checkpoint().expect("base"))
            .expect("base push"),
        PushOutcome::Accepted
    );
    let base_bytes_out = client.stats().bytes_out;

    let mut full_bytes = 0usize;
    for chunk in &increments {
        sampler.sample_batches(chunk, 1024, |c| monitor.update_batch(c));
        let wire = monitor.checkpoint().expect("checkpoint");
        full_bytes += wire.len();
        assert_eq!(client.push_wire(wire).expect("push"), PushOutcome::Accepted);
    }
    let stats = client.stats().clone();
    client.close();

    // The base is necessarily full; every steady-state push after it
    // rides as a delta at a fraction of the full snapshot size.
    assert_eq!(stats.snapshots_pushed, increments.len() as u64 + 1);
    assert_eq!(stats.snapshots_delta, increments.len() as u64);
    assert_eq!(stats.delta_fallbacks, 0);
    let delta_bytes = (stats.bytes_out - base_bytes_out) as usize;
    assert!(
        delta_bytes * 2 < full_bytes,
        "steady-state delta pushes wrote {delta_bytes} B where full pushes would write {full_bytes} B"
    );

    let (merged, sstats) = server.shutdown();
    assert_eq!(sstats.rejected_total(), 0);
    assert_eq!(merged.samples_seen(), monitor.samples_seen());
    for ((la, ea), (lb, eb)) in merged.report().iter().zip(&monitor.report()) {
        assert_eq!(la, lb);
        assert_eq!(ea.value.to_bits(), eb.value.to_bits(), "{la} diverged");
    }
}

/// Hand-rolled peer exercising the delta protocol edge cases on one
/// socket: interleaved full/delta pushes, a delta naming a base the
/// collector does not hold (`RejectedUnknownBase`, counted under
/// `unknown_base`), a corrupt delta body, and a replayed delta sequence
/// answered `Duplicate` and merged once.
#[test]
fn delta_pushes_over_a_raw_socket_with_wrong_base_and_replay() {
    use subsampled_streams::core::snapshot_delta;
    use subsampled_streams::transport::SnapshotDeltaPush;

    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let hello = Hello {
        proto_version: TRANSPORT_PROTO_VERSION,
        site_id: 12,
        site_name: "delta-site".to_string(),
        features: subsampled_streams::transport::FEATURE_DELTA_PUSH,
    };
    write_frame(&mut stream, &hello.encode_framed()).expect("hello");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("hello ack");
    let ack = HelloAck::decode_framed(&bytes).expect("decode");
    assert!(ack.accepted);
    assert_eq!(
        ack.features & subsampled_streams::transport::FEATURE_DELTA_PUSH,
        subsampled_streams::transport::FEATURE_DELTA_PUSH,
        "collector must grant delta pushes"
    );

    // Base: a full push (seq 0).
    let trace = ZipfStream::new(400, 1.1).generate(30_000, 43);
    let (first, second) = trace.split_at(trace.len() / 2);
    let mut monitor = prototype();
    let mut sampler = BernoulliSampler::new(P, 19);
    sampler.sample_batches(first, 1024, |c| monitor.update_batch(c));
    let base_wire = monitor.checkpoint().expect("base");
    let push = SnapshotPush {
        site_id: 12,
        seq: 0,
        snapshot: base_wire.clone(),
    };
    write_frame(&mut stream, &push.encode_framed()).expect("full push");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("ack");
    assert_eq!(
        SnapshotAck::decode_framed(&bytes).expect("ack").status,
        AckStatus::Accepted
    );

    // Next checkpoint as a delta.
    sampler.sample_batches(second, 1024, |c| monitor.update_batch(c));
    let next_wire = monitor.checkpoint().expect("next");
    let delta = snapshot_delta(&base_wire, &next_wire);
    assert!(delta.len() < next_wire.len());

    // 1) Wrong base sequence → RejectedUnknownBase, nothing merged.
    let bad = SnapshotDeltaPush {
        site_id: 12,
        seq: 1,
        base_seq: 7,
        delta: delta.clone(),
    };
    write_frame(&mut stream, &bad.encode_framed()).expect("bad-base push");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("nack");
    let ack = SnapshotAck::decode_framed(&bytes).expect("nack");
    assert_eq!(ack.status, AckStatus::RejectedUnknownBase);
    assert!(ack.reason.contains("base"), "reason: {}", ack.reason);

    // 2) Right base sequence but corrupt delta body → Rejected (typed),
    //    connection keeps serving.
    let mut torn = delta.clone();
    let n = torn.len();
    torn[n / 2] ^= 0x20;
    let bad = SnapshotDeltaPush {
        site_id: 12,
        seq: 1,
        base_seq: 0,
        delta: torn,
    };
    write_frame(&mut stream, &bad.encode_framed()).expect("corrupt delta push");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("nack");
    assert_eq!(
        SnapshotAck::decode_framed(&bytes).expect("nack").status,
        AckStatus::Rejected
    );

    // 3) The good delta lands…
    let good = SnapshotDeltaPush {
        site_id: 12,
        seq: 1,
        base_seq: 0,
        delta: delta.clone(),
    };
    write_frame(&mut stream, &good.encode_framed()).expect("delta push");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("ack");
    assert_eq!(
        SnapshotAck::decode_framed(&bytes).expect("ack").status,
        AckStatus::Accepted
    );

    // 4) …and its replay (retry-after-lost-ack) is deduplicated.
    write_frame(&mut stream, &good.encode_framed()).expect("replayed delta");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("ack");
    assert_eq!(
        SnapshotAck::decode_framed(&bytes).expect("ack").status,
        AckStatus::Duplicate
    );

    let (merged, stats) = server.shutdown();
    assert_eq!(stats.snapshots_accepted, 2);
    assert_eq!(stats.snapshots_duplicate, 1);
    assert_eq!(stats.rejected(RejectReason::UnknownBase), 1);
    assert_eq!(stats.rejected(RejectReason::ChecksumMismatch), 1);
    // The reconstructed snapshot merged bitwise like the in-memory one.
    assert_eq!(merged.samples_seen(), monitor.samples_seen());
    for ((la, ea), (lb, eb)) in merged.report().iter().zip(&monitor.report()) {
        assert_eq!(la, lb);
        assert_eq!(ea.value.to_bits(), eb.value.to_bits(), "{la} diverged");
    }
}

/// A site whose retained base went stale (another connection advanced
/// the collector's sequence) transparently falls back to a full push
/// with the same sequence number — nothing lost, nothing double-counted.
#[test]
fn stale_base_falls_back_to_a_full_push_transparently() {
    let trace = ZipfStream::new(600, 1.1).generate(40_000, 53);
    let parts: Vec<&[u64]> = trace.chunks(trace.len() / 4).collect();
    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let addr = server.local_addr();

    // First client instance for site 8: one full push (seq 0).
    let mut monitor = prototype();
    let mut sampler = BernoulliSampler::new(P, 61);
    let mut client_a = SiteClient::connect(addr, test_client_config(8)).expect("connect a");
    sampler.sample_batches(parts[0], 1024, |c| monitor.update_batch(c));
    client_a.push_monitor(&monitor).expect("a push 0");

    // A second instance for the same site advances the collector's
    // sequence (and therefore its retained delta base) twice.
    let mut client_b = SiteClient::connect(addr, test_client_config(8)).expect("connect b");
    sampler.sample_batches(parts[1], 1024, |c| monitor.update_batch(c));
    client_b.push_monitor(&monitor).expect("b push 1");
    sampler.sample_batches(parts[2], 1024, |c| monitor.update_batch(c));
    client_b.push_monitor(&monitor).expect("b push 2");
    client_b.close();

    // Client A reconnects (fast-forwarding its sequence) and pushes: its
    // retained base (seq 0) is long gone server-side, so the delta is
    // answered RejectedUnknownBase and the client transparently re-sends
    // the full snapshot under the same sequence.
    client_a.drop_connection();
    sampler.sample_batches(parts[3], 1024, |c| monitor.update_batch(c));
    assert_eq!(
        client_a.push_monitor(&monitor).expect("a push 3"),
        PushOutcome::Accepted
    );
    let stats_a = client_a.stats().clone();
    client_a.close();
    assert_eq!(stats_a.delta_fallbacks, 1, "the fallback must be visible");
    assert_eq!(stats_a.snapshots_pushed, 2);

    let (merged, stats) = server.shutdown();
    assert_eq!(stats.snapshots_accepted, 4);
    assert_eq!(stats.rejected(RejectReason::UnknownBase), 1);
    assert_eq!(
        merged.samples_seen(),
        monitor.samples_seen(),
        "the collector must hold the final cumulative state exactly once"
    );
}

/// Acceptance drill: a collector fed a mix of wire-v1 full pushes (the
/// committed fixture bytes), v2 full pushes and v2 delta pushes yields
/// a merged view bitwise-identical to the in-memory merge of the same
/// snapshots.
#[test]
fn collector_merges_v1_full_v2_full_and_v2_delta_pushes_bitwise() {
    // The committed wire-v1 monitor fixture's builder configuration
    // (see examples/gen_wire_fixtures.rs — frozen with the corpus).
    let p = 0.25;
    let proto = || {
        MonitorBuilder::with_seed(p, 7)
            .f0(0.05)
            .fk(2)
            .entropy(256)
            .f1_heavy_hitters(0.05, 0.2, 0.05)
            .f2_heavy_hitters(0.5, 0.5, 0.3)
            .build()
    };
    let v1_wire = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/wire_v1/monitor_full.bin"
    ))
    .expect("committed v1 fixture");

    let server = CollectorServer::bind("127.0.0.1:0", proto(), test_server_config()).expect("bind");
    let addr = server.local_addr();

    // Site 1: the version-1 frame, pushed verbatim.
    let mut c1 = SiteClient::connect(addr, test_client_config(1)).expect("c1");
    assert_eq!(
        c1.push_wire(v1_wire.clone()).expect("v1 push"),
        PushOutcome::Accepted
    );
    c1.close();

    // Site 2: a v2 full push.
    let trace = ZipfStream::new(1 << 12, 1.2).generate(30_000, 97);
    let (left, right) = trace.split_at(trace.len() / 2);
    let mut m2 = proto();
    let mut s2 = BernoulliSampler::new(p, 201);
    s2.sample_batches(left, 1024, |c| m2.update_batch(c));
    let mut c2 = SiteClient::connect(addr, test_client_config(2)).expect("c2");
    c2.push_monitor(&m2).expect("v2 full push");
    c2.close();

    // Site 3: a v2 full push followed by a delta push.
    let mut m3 = proto();
    let mut s3 = BernoulliSampler::new(p, 301);
    s3.sample_batches(left, 1024, |c| m3.update_batch(c));
    let mut c3 = SiteClient::connect(addr, test_client_config(3)).expect("c3");
    c3.push_monitor(&m3).expect("v2 base push");
    s3.sample_batches(right, 1024, |c| m3.update_batch(c));
    c3.push_monitor(&m3).expect("v2 delta push");
    let stats3 = c3.stats().clone();
    c3.close();
    assert_eq!(
        stats3.snapshots_delta, 1,
        "second push must ride as a delta"
    );

    let (merged, stats) = server.shutdown();
    assert_eq!(stats.rejected_total(), 0);
    assert_eq!(stats.snapshots_accepted, 4);

    // In-memory reference, same ascending-site fold order.
    let mut reference = proto();
    reference
        .try_merge(&Monitor::restore(&v1_wire).expect("v1 restores"))
        .expect("v1 merges");
    reference.try_merge(&m2).expect("site 2 merges");
    reference.try_merge(&m3).expect("site 3 merges");
    assert_eq!(merged.samples_seen(), reference.samples_seen());
    for ((la, ea), (lb, eb)) in merged.report().iter().zip(&reference.report()) {
        assert_eq!(la, lb);
        assert_eq!(
            ea.value.to_bits(),
            eb.value.to_bits(),
            "{la}: mixed-version TCP merge {} vs in-memory {}",
            ea.value,
            eb.value
        );
    }
}

/// The client's bounded retry gives up with a typed error when nothing
/// is listening, instead of hanging forever.
#[test]
fn retries_exhaust_with_typed_error_when_collector_is_down() {
    // Bind-then-drop to get a port with no listener.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").port()
    };
    let mut cfg = test_client_config(1);
    cfg.retry.max_attempts = 2;
    cfg.connect_timeout = Duration::from_millis(200);
    let err = match SiteClient::connect(("127.0.0.1", port), cfg) {
        Ok(_) => panic!("connect must fail: nothing is listening"),
        Err(e) => e,
    };
    match err {
        TransportError::RetriesExhausted { attempts, .. } => assert_eq!(attempts, 2),
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

/// Windowed acceptance: sites run sliding windows over disjoint slices
/// of the same timeline, ship their window *folds* (plain monitor
/// frames — no protocol change) over real TCP, and the collector's
/// merge is bitwise-equal to the in-memory merge of the same folds.
#[test]
fn windowed_folds_ship_over_tcp_and_merge_bitwise() {
    use subsampled_streams::window::{WindowConfig, WindowedMonitor};

    let sites = 2usize;
    let span = 5_000u64;
    let base = WindowedMonitor::new(prototype(), WindowConfig::new(4, span));
    let trace: Vec<(u64, u64)> = ZipfStream::new(2_000, 1.2)
        .generate(60_000, 23)
        .into_iter()
        .enumerate()
        .map(|(i, x)| (i as u64, x))
        .collect();

    // Each site samples and windows its (round-robin) slice, then all
    // clocks align to the shared timeline's last epoch.
    let mut windows: Vec<WindowedMonitor> = (0..sites).map(|s| base.fork_shard(s as u64)).collect();
    let mut samplers: Vec<BernoulliSampler> = (0..sites)
        .map(|s| BernoulliSampler::new(P, 300 + s as u64))
        .collect();
    for &(ts, x) in &trace {
        let s = (ts % sites as u64) as usize;
        if samplers[s].keep() {
            windows[s].ingest_at(ts, x);
        }
    }
    let top = windows.iter().map(|w| w.cur_epoch()).max().expect("sites");
    for w in &mut windows {
        w.advance_to(top);
    }

    // Fold each window to a monitor snapshot; one codec round trip must
    // be byte-stable before anything touches a socket.
    let folds: Vec<Monitor> = windows.iter().map(|w| w.fold()).collect();
    let wires: Vec<Vec<u8>> = folds
        .iter()
        .map(|f| f.checkpoint().expect("fold checkpoints"))
        .collect();
    for (f, wire) in folds.iter().zip(&wires) {
        let back = Monitor::restore(wire).expect("fold restores");
        assert_eq!(back.checkpoint().expect("re-checkpoint"), *wire);
        assert_eq!(back.samples_seen(), f.samples_seen());
    }

    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let addr = server.local_addr();
    for (s, wire) in wires.iter().enumerate() {
        let mut client = SiteClient::connect(addr, test_client_config(s as u64)).expect("connect");
        assert_eq!(
            client.push_wire(wire.clone()).expect("push"),
            PushOutcome::Accepted
        );
        client.close();
    }
    let (merged, stats) = server.shutdown();
    assert_eq!(stats.snapshots_accepted, sites as u64);
    assert_eq!(stats.rejected_total(), 0);

    // In-memory reference: same folds, same ascending-site order.
    let mut reference = prototype();
    for fold in &folds {
        reference.try_merge(fold).expect("in-memory merge");
    }
    assert_eq!(merged.samples_seen(), reference.samples_seen());
    for ((la, ea), (lb, eb)) in merged.report().iter().zip(reference.report().iter()) {
        assert_eq!(la, lb);
        assert_eq!(
            ea.value.to_bits(),
            eb.value.to_bits(),
            "{la}: TCP fold must be bitwise-equal to the in-memory fold"
        );
    }

    // And the *whole window* state itself round-trips the codec: what a
    // site would persist locally to survive a restart mid-window.
    let snap = windows[0].checkpoint().expect("window checkpoint");
    let restored = WindowedMonitor::restore(&snap).expect("window restores");
    assert_eq!(restored.checkpoint().expect("re-checkpoint"), snap);
}

/// One HTTP/1.0 request against the collector's stats endpoint.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut s = TcpStream::connect(addr).expect("connect stats endpoint");
    write!(s, "GET {path} HTTP/1.0\r\n\r\n").expect("send request");
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    buf
}

/// Telemetry flows end to end: a site pushes its snapshot *and* its
/// metrics, and the stats endpoint serves both renders — the
/// collector's own registry (every declared metric, zeros included)
/// plus the per-site telemetry stamped with a `site` label.
#[test]
fn metrics_push_and_stats_endpoint_serve_both_renders() {
    use subsampled_streams::obs::global;

    let cfg = ServerConfig {
        stats_addr: Some("127.0.0.1:0".to_string()),
        ..test_server_config()
    };
    let server = CollectorServer::bind("127.0.0.1:0", prototype(), cfg).expect("bind");
    let stats_addr = server.stats_addr().expect("stats endpoint configured");

    let stream = ZipfStream::new(1_000, 1.2).generate(20_000, 31);
    let (_m, wire) = site_monitor(&stream, 7);
    let mut client =
        SiteClient::connect(server.local_addr(), test_client_config(9)).expect("connect");
    assert_eq!(client.push_wire(wire).expect("push"), PushOutcome::Accepted);

    // The site ships its own process-wide telemetry (which the ingest
    // above instrumented) over the negotiated metrics-push feature.
    client
        .push_metrics(&global().snapshot())
        .expect("metrics push");
    client
        .push_metrics(&global().snapshot())
        .expect("second push overwrites");
    client.close();

    let site_metrics = server.site_metrics();
    assert_eq!(site_metrics.len(), 1);
    assert_eq!(site_metrics[0].0, 9);

    // Prometheus render: ≥ 25 distinct collector-side metric names,
    // plus the site's own series labeled site="9".
    let prom = http_get(stats_addr, "/metrics");
    assert!(prom.starts_with("HTTP/1.0 200 OK"), "{prom}");
    let body = prom.split("\r\n\r\n").nth(1).expect("body");
    let mut names: Vec<&str> = body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .map(|l| l.split(['{', ' ']).next().unwrap())
        .collect();
    names.sort_unstable();
    names.dedup();
    assert!(
        names.len() >= 25,
        "expected >= 25 distinct metrics, got {}: {names:?}",
        names.len()
    );
    assert!(
        body.contains("sss_transport_snapshots_accepted_total 1"),
        "collector accept counter"
    );
    assert!(body.contains("site=\"9\""), "site-labeled series present");

    // JSON render: collector object plus the pushed site snapshots.
    let json = http_get(stats_addr, "/metrics.json");
    assert!(json.starts_with("HTTP/1.0 200 OK"), "{json}");
    let jbody = json.split("\r\n\r\n").nth(1).expect("body");
    assert!(jbody.starts_with("{\"collector\":"), "{jbody}");
    assert!(jbody.contains("\"sites\":[{"), "site snapshot present");
    assert!(jbody.contains("\"site\":9"), "site id stamped");
    let jnames = jbody.matches("sss_").count();
    assert!(jnames >= 25, "JSON exposes >= 25 metrics, got {jnames}");

    // Unknown paths 404 without wedging the endpoint.
    let missing = http_get(stats_addr, "/nope");
    assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    let again = http_get(stats_addr, "/metrics");
    assert!(again.starts_with("HTTP/1.0 200 OK"));

    server.shutdown();
}

/// `TransportStats` is a thin view over the collector registry: the
/// struct fields, the per-site rows and the raw registry cells agree,
/// and `since_last_seen` is session-relative (small right after a
/// push, never an Instant artifact).
#[test]
fn transport_stats_is_a_view_over_the_registry() {
    use subsampled_streams::obs::MetricId;

    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let stream = ZipfStream::new(1_000, 1.2).generate(15_000, 37);
    let (_m, wire) = site_monitor(&stream, 11);
    let mut client =
        SiteClient::connect(server.local_addr(), test_client_config(3)).expect("connect");
    let bytes = wire.len();
    assert_eq!(client.push_wire(wire).expect("push"), PushOutcome::Accepted);

    let stats = server.stats();
    let reg = server.registry();
    assert_eq!(
        stats.snapshots_accepted,
        reg.value(MetricId::TransportSnapshotsAcceptedTotal)
    );
    assert_eq!(
        stats.connections_accepted,
        reg.value(MetricId::TransportConnectionsTotal)
    );
    assert_eq!(stats.bytes_in, reg.value(MetricId::TransportBytesInTotal));
    assert_eq!(stats.sites.len(), 1);
    let row = &stats.sites[0];
    assert_eq!(row.site_id, 3);
    assert_eq!(row.snapshots_accepted, 1);
    assert_eq!(row.last_seq, Some(0));
    assert!(row.bytes_in as usize > bytes, "frame bytes include header");
    assert_eq!(
        row.snapshots_accepted,
        reg.labeled_value(MetricId::TransportSiteSnapshotsTotal, 3)
    );
    assert_eq!(
        row.bytes_in,
        reg.labeled_value(MetricId::TransportSiteBytesInTotal, 3)
    );
    // seq+1 storage: gauge cell reads 1 for accepted seq 0.
    assert_eq!(reg.labeled_value(MetricId::TransportSiteLastSeq, 3), 1);
    assert!(
        row.since_last_seen < Duration::from_secs(30),
        "session-relative offset, not a restored-Instant artifact: {:?}",
        row.since_last_seen
    );

    // The accept left a trace event behind.
    let events = reg.events();
    assert!(
        events.iter().any(
            |e| e.kind == subsampled_streams::obs::EventKind::SnapshotAccepted
                && e.a == 3
                && e.b == 0
        ),
        "{events:?}"
    );
    client.close();
    server.shutdown();
}

/// A metrics push whose site id disagrees with the hello is rejected
/// and counted under the same reason counter as a mismatched snapshot.
#[test]
fn metrics_push_site_mismatch_is_rejected() {
    use subsampled_streams::obs::global;
    use subsampled_streams::transport::MetricsPush;

    let server =
        CollectorServer::bind("127.0.0.1:0", prototype(), test_server_config()).expect("bind");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let hello = Hello {
        proto_version: TRANSPORT_PROTO_VERSION,
        site_id: 1,
        site_name: "drill".to_string(),
        features: u64::MAX,
    };
    write_frame(&mut stream, &hello.encode_framed()).expect("hello");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("hello ack");
    let ack = HelloAck::decode_framed(&bytes).expect("ack decodes");
    assert!(ack.accepted);

    let push = MetricsPush {
        site_id: 2, // not the session's site
        seq: 0,
        snapshot: global().snapshot(),
    };
    write_frame(&mut stream, &push.encode_framed()).expect("push");
    let (_, bytes) = read_frame(&mut stream, 1 << 20).expect("push ack");
    let ack = SnapshotAck::decode_framed(&bytes).expect("ack decodes");
    assert_eq!(ack.status, AckStatus::Rejected);

    let stats = server.stats();
    assert_eq!(stats.rejected(RejectReason::SiteMismatch), 1);
    assert!(server.site_metrics().is_empty());
    server.shutdown();
}
