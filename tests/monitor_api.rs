//! Integration tests for the unified estimation API: the
//! `SubsampledEstimator` trait, the typed `Estimate`, and the single-pass
//! `Monitor` pipeline with mergeable, batch-capable estimators.

use subsampled_streams::core::{
    recommended_levelset_config, AdaptiveF2Estimator, Guarantee, MonitorBuilder, NaiveScaledF0,
    NaiveScaledFk, RusuDobraF2, SampledEntropyEstimator, SampledF0Estimator, SampledF1HeavyHitters,
    SampledF2HeavyHitters, SampledFkEstimator, Statistic, SubsampledEstimator,
};
use subsampled_streams::stream::{BernoulliSampler, ExactStats, StreamGen, ZipfStream};

/// Drive any estimator over a Bernoulli sample of a slice of `P`.
fn feed<E: SubsampledEstimator>(est: &mut E, part: &[u64], p: f64, seed: u64) {
    let mut sampler = BernoulliSampler::new(p, seed);
    sampler.sample_batches(part, 512, |chunk| est.update_batch(chunk));
}

/// Split `stream` into `shards` contiguous slices.
fn shards(stream: &[u64], n: usize) -> Vec<&[u64]> {
    let chunk = stream.len() / n;
    (0..n)
        .map(|s| {
            let lo = s * chunk;
            let hi = if s + 1 == n { stream.len() } else { lo + chunk };
            &stream[lo..hi]
        })
        .collect()
}

/// A sharded run (split across N estimators, then merged) must agree with
/// the single-estimator run **exactly** for the exact collision oracle:
/// the same sampled elements produce the same frequency algebra whatever
/// the sharding.
#[test]
fn sharded_fk_equals_single_estimator_exactly() {
    let p = 0.3;
    let stream = ZipfStream::new(2_000, 1.2).generate(90_000, 5);
    for n_shards in [2usize, 3, 6] {
        let parts = shards(&stream, n_shards);
        // Single estimator over every shard's sample, in shard order.
        let mut single = SampledFkEstimator::exact(3, p);
        for (s, part) in parts.iter().enumerate() {
            feed(&mut single, part, p, 1000 + s as u64);
        }
        // One estimator per shard (same sampling seeds), then merge.
        let mut merged: Option<SampledFkEstimator<_>> = None;
        for (s, part) in parts.iter().enumerate() {
            let mut est = SampledFkEstimator::exact(3, p);
            feed(&mut est, part, p, 1000 + s as u64);
            match merged.as_mut() {
                None => merged = Some(est),
                Some(m) => SubsampledEstimator::merge(m, &est),
            }
        }
        let merged = merged.unwrap();
        let a = SampledFkEstimator::estimate(&single);
        let b = SampledFkEstimator::estimate(&merged);
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "{n_shards} shards: single {a} vs merged {b}"
        );
        assert_eq!(single.samples_seen(), merged.samples_seen());
    }
}

/// Same exactness for F_0: bottom-k union is sharding-invariant when all
/// shards share the sketch seed.
#[test]
fn sharded_f0_equals_single_estimator_exactly() {
    let p = 0.25;
    let stream = ZipfStream::new(30_000, 1.1).generate(120_000, 6);
    let parts = shards(&stream, 4);
    let mut single = SampledF0Estimator::new(p, 0.05, 777);
    let mut merged: Option<SampledF0Estimator> = None;
    for (s, part) in parts.iter().enumerate() {
        feed(&mut single, part, p, 2000 + s as u64);
        let mut est = SampledF0Estimator::new(p, 0.05, 777);
        feed(&mut est, part, p, 2000 + s as u64);
        match merged.as_mut() {
            None => merged = Some(est),
            Some(m) => m.merge(&est),
        }
    }
    let merged = merged.unwrap();
    assert_eq!(
        SampledF0Estimator::estimate(&single),
        SampledF0Estimator::estimate(&merged)
    );
    assert_eq!(single.samples_seen(), merged.samples_seen());
}

/// Sketched estimators merge within tolerance: the level-set substrate is
/// linear, but candidate recovery may differ marginally between the
/// sharded and centralised runs.
#[test]
fn sharded_sketched_fk_matches_single_within_tolerance() {
    let p = 0.3;
    let m = 5_000u64;
    let stream = ZipfStream::new(m, 1.3).generate(120_000, 7);
    let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
    let cfg = recommended_levelset_config(2, m, p, 0.2);
    let parts = shards(&stream, 3);

    let mut single = SampledFkEstimator::sketched(2, p, &cfg, 42);
    let mut merged: Option<SampledFkEstimator<_>> = None;
    for (s, part) in parts.iter().enumerate() {
        feed(&mut single, part, p, 3000 + s as u64);
        let mut est = SampledFkEstimator::sketched(2, p, &cfg, 42);
        feed(&mut est, part, p, 3000 + s as u64);
        match merged.as_mut() {
            None => merged = Some(est),
            Some(m) => m.merge(&est),
        }
    }
    let merged = merged.unwrap();
    let a = SampledFkEstimator::estimate(&single);
    let b = SampledFkEstimator::estimate(&merged);
    assert!((a - b).abs() / a < 0.25, "single {a} vs merged {b}");
    assert!(
        (b - truth).abs() / truth < 0.4,
        "merged {b} vs truth {truth}"
    );
}

/// Merge is commutative and associative at the trait level (exact
/// substrate), so collector topology does not matter.
#[test]
fn trait_merge_commutative_associative() {
    let p = 0.4;
    let stream = ZipfStream::new(800, 1.1).generate(45_000, 8);
    let parts = shards(&stream, 3);
    let build = |s: usize| {
        let mut est = SampledFkEstimator::exact(2, p);
        feed(&mut est, parts[s], p, 4000 + s as u64);
        est
    };
    // Commutativity.
    let mut ab = build(0);
    ab.merge(&build(1));
    let mut ba = build(1);
    ba.merge(&build(0));
    assert!(
        (SampledFkEstimator::estimate(&ab) - SampledFkEstimator::estimate(&ba)).abs()
            <= 1e-9 * SampledFkEstimator::estimate(&ab),
    );
    // Associativity.
    let mut left = build(0);
    left.merge(&build(1));
    left.merge(&build(2));
    let mut bc = build(1);
    bc.merge(&build(2));
    let mut right = build(0);
    right.merge(&bc);
    assert!(
        (SampledFkEstimator::estimate(&left) - SampledFkEstimator::estimate(&right)).abs()
            <= 1e-6 * SampledFkEstimator::estimate(&left),
    );
}

/// Every estimator implements the trait and reports a sane, positive
/// space_bytes that grows once data arrives; estimates carry the right
/// guarantee kind and provenance.
#[test]
fn every_estimator_reports_sane_space_and_provenance() {
    let p = 0.5;
    let stream = ZipfStream::new(1_000, 1.2).generate(20_000, 9);
    let cfg = recommended_levelset_config(2, 1_000, p, 0.3);

    let mut estimators: Vec<Box<dyn SubsampledEstimator>> = vec![
        Box::new(SampledFkEstimator::exact(2, p)),
        Box::new(SampledFkEstimator::sketched(2, p, &cfg, 1)),
        Box::new(SampledF0Estimator::new(p, 0.05, 2)),
        Box::new(SampledEntropyEstimator::new(p, 200, 3)),
        Box::new(SampledF1HeavyHitters::new(0.05, 0.2, 0.05, p, 4)),
        Box::new(SampledF2HeavyHitters::new(0.3, 0.2, 0.05, p, 5)),
        Box::new(RusuDobraF2::new(p, 5, 32, 6)),
        Box::new(NaiveScaledFk::new(2, p)),
        Box::new(NaiveScaledF0::new(p, 7)),
        Box::new(AdaptiveF2Estimator::new(p)),
    ];
    let sampled = BernoulliSampler::new(p, 10).sample_to_vec(&stream);
    for est in &mut estimators {
        est.update_batch(&sampled);
        let bytes = est.space_bytes();
        assert!(bytes > 0, "{:?}: zero space", est.statistic());
        // Generous sanity ceiling: none of these should exceed 64 MiB on
        // a 20k-element workload.
        assert!(bytes < 64 << 20, "{:?}: {bytes} bytes", est.statistic());
        let e = est.estimate();
        assert_eq!(e.p, est.p(), "{:?}", est.statistic());
        assert_eq!(
            e.samples_seen,
            sampled.len() as u64,
            "{:?}",
            est.statistic()
        );
        assert!(e.value.is_finite());
        match (est.statistic(), &e.guarantee) {
            (Statistic::F1HeavyHitters | Statistic::F2HeavyHitters, g) => {
                assert!(matches!(g, Guarantee::HeavyHitters { .. }), "{g:?}");
                assert_eq!(e.value, e.report.len() as f64);
            }
            (_, g) => {
                assert!(e.report.is_empty(), "scalar estimate with report: {g:?}");
            }
        }
    }
}

/// The acceptance shape of the tentpole: a single Monitor pass over one
/// sampled stream produces F_0, F_2, entropy and heavy-hitter estimates
/// together, each inside its theorem's band.
#[test]
fn monitor_single_pass_all_statistics_within_bands() {
    let n = 300_000u64;
    let p = 0.1;
    let stream = ZipfStream::new(20_000, 1.2).generate(n, 11);
    let exact = ExactStats::from_stream(stream.iter().copied());

    let mut monitor = MonitorBuilder::with_seed(p, 33)
        .f0(0.01)
        .fk(2)
        .entropy(2500)
        .f1_heavy_hitters(0.02, 0.2, 0.05)
        .build();
    let mut sampler = BernoulliSampler::new(p, 34);
    sampler.sample_batches(&stream, 2048, |chunk| monitor.update_batch(chunk));

    let f2 = monitor.estimate(Statistic::Fk(2)).unwrap();
    assert!(f2.mult_error(exact.fk(2)) < 1.15, "F2 {}", f2.value);

    let f0 = monitor.estimate(Statistic::F0).unwrap();
    let ceiling = match f0.guarantee {
        Guarantee::BoundedFactor { factor } => factor,
        ref g => panic!("wrong F0 guarantee {g:?}"),
    };
    assert!(f0.mult_error(exact.f0() as f64) <= ceiling);

    let h = monitor.estimate(Statistic::Entropy).unwrap();
    let ratio = h.value / exact.entropy();
    assert!((0.5..=2.0).contains(&ratio), "entropy ratio {ratio}");

    let hh = monitor.estimate(Statistic::F1HeavyHitters).unwrap();
    let cutoff = (1.0 - 0.2) * 0.02 * n as f64;
    assert!(!hh.report.is_empty(), "no heavy hitters found");
    for &(i, _) in &hh.report {
        assert!(exact.freq(i) as f64 >= cutoff, "false positive {i}");
    }
}

/// Sharded monitors merged at a collector answer like one monitor whose
/// sample is the union — exactly, because every registered substrate here
/// merges exactly and the same sampled elements are fed either way.
#[test]
fn sharded_monitors_merge_to_single_monitor_answer() {
    let p = 0.2;
    let stream = ZipfStream::new(4_000, 1.2).generate(120_000, 12);
    let parts = shards(&stream, 4);
    let build = || {
        MonitorBuilder::with_seed(p, 55)
            .f0(0.05)
            .fk(2)
            .f1_heavy_hitters(0.05, 0.2, 0.05)
            .build()
    };

    let mut single = build();
    let mut merged = None;
    for (s, part) in parts.iter().enumerate() {
        let mut sampler = BernoulliSampler::new(p, 5000 + s as u64);
        let sampled = sampler.sample_to_vec(part);
        single.update_batch(&sampled);
        let mut site = build();
        site.update_batch(&sampled);
        match merged.as_mut() {
            None => merged = Some(site),
            Some(m) => m.merge(&site),
        }
    }
    let merged = merged.unwrap();
    assert_eq!(single.samples_seen(), merged.samples_seen());
    for ((ls, es), (lm, em)) in single.report().into_iter().zip(merged.report()) {
        assert_eq!(ls, lm);
        assert!(
            (es.value - em.value).abs() <= 1e-9 * es.value.abs().max(1.0),
            "{ls}: single {} vs merged {}",
            es.value,
            em.value
        );
        assert_eq!(es.report, em.report, "{ls}: reports differ");
    }
}
