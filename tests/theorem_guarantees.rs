//! Statistical acceptance tests: each theorem's quantitative promise,
//! checked over repeated sampling trials with fixed seeds.
//!
//! These are the "does the paper's math hold on this implementation" tests
//! — slower than unit tests, deliberately generous on constants so they
//! are deterministic and non-flaky, but tight enough that a broken
//! estimator cannot sneak through.

use subsampled_streams::core::{ApproxParams, SampledF0Estimator, SampledFkEstimator};
use subsampled_streams::stream::{
    BernoulliSampler, EntropyScenarioPair, ExactStats, StreamGen, UniformStream, ZipfStream,
};

/// Theorem 1 acceptance: at p comfortably above min(m,n)^{-1/k}, the
/// (1+ε, δ) contract holds empirically: ≥ 90% of trials within ε = 0.1.
#[test]
fn theorem1_f2_probabilistic_contract() {
    let stream = ZipfStream::new(10_000, 1.2).generate(300_000, 31);
    let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
    let p = 0.1;
    let params = ApproxParams::new(0.1, 0.1);
    let trials = 30;
    let mut ok = 0;
    for seed in 0..trials {
        let mut est = SampledFkEstimator::exact(2, p);
        let mut sampler = BernoulliSampler::new(p, seed);
        sampler.sample_slice(&stream, |x| est.update(x));
        if params.accepts(est.estimate(), truth) {
            ok += 1;
        }
    }
    assert!(ok >= 27, "only {ok}/{trials} trials within (1+0.1)");
}

/// Theorem 1 acceptance for k = 4 (wider error budget: the β-recursion
/// amplifies lower-moment noise exactly as Lemma 4's schedule predicts).
#[test]
fn theorem1_f4_probabilistic_contract() {
    let stream = ZipfStream::new(5_000, 1.4).generate(200_000, 37);
    let truth = ExactStats::from_stream(stream.iter().copied()).fk(4);
    let p = 0.2;
    let params = ApproxParams::new(0.15, 0.1);
    let trials = 30;
    let mut ok = 0;
    for seed in 100..100 + trials {
        let mut est = SampledFkEstimator::exact(4, p);
        let mut sampler = BernoulliSampler::new(p, seed);
        sampler.sample_slice(&stream, |x| est.update(x));
        if params.accepts(est.estimate(), truth) {
            ok += 1;
        }
    }
    assert!(ok >= 27, "only {ok}/{trials} trials within (1+0.15)");
}

/// Theorem 1's admissibility edge: far below p_min the estimator loses the
/// contract on adversarially flat streams — the premise is not vacuous.
#[test]
fn below_minimum_p_the_contract_degrades() {
    // All-distinct-ish stream: min(m, n)^{-1/2} with n = m = 100_000 is
    // ~0.003; sample at p = 0.0005, far below. F2(P) = n (all singletons);
    // the sampled stream sees ~50 items and almost never a collision, so
    // the estimate's spread must blow past (1±0.1).
    let n = 100_000u64;
    let stream: Vec<u64> = (0..n)
        .map(subsampled_streams::hash::fingerprint64)
        .collect();
    let truth = n as f64;
    let p = 0.0005;
    let params = ApproxParams::new(0.1, 0.1);
    let trials = 30;
    let mut ok = 0;
    for seed in 0..trials {
        let mut est = SampledFkEstimator::exact(2, p);
        let mut sampler = BernoulliSampler::new(p, seed);
        sampler.sample_slice(&stream, |x| est.update(x));
        if params.accepts(est.estimate(), truth) {
            ok += 1;
        }
    }
    assert!(
        ok < 27,
        "contract unexpectedly held ({ok}/{trials}) below p_min"
    );
}

/// Lemma 8 acceptance: the 4/√p ceiling holds in every trial, across rates
/// and stream shapes.
#[test]
fn lemma8_ceiling_never_violated() {
    let streams: Vec<Vec<u64>> = vec![
        UniformStream::new(20_000).generate(200_000, 41),
        ZipfStream::new(20_000, 1.5).generate(200_000, 42),
        (0..100_000u64).collect(), // all distinct
    ];
    for (si, stream) in streams.iter().enumerate() {
        let truth = ExactStats::from_stream(stream.iter().copied()).f0() as f64;
        for &p in &[0.5f64, 0.1, 0.02] {
            for seed in 0..10u64 {
                let mut est = SampledF0Estimator::new(p, 0.01, seed);
                let mut sampler = BernoulliSampler::new(p, 1000 + seed);
                sampler.sample_slice(stream, |x| est.update(x));
                let err = ApproxParams::mult_error(est.estimate(), truth);
                assert!(
                    err <= est.error_factor(),
                    "stream {si}, p={p}, seed={seed}: {err} > {}",
                    est.error_factor()
                );
            }
        }
    }
}

/// Theorem 4 acceptance: on the hard pair, the worst-side error of
/// Algorithm 2 exceeds the theorem's lower-bound factor.
#[test]
fn theorem4_hard_pair_error_floor() {
    for &p in &[0.04f64, 0.01] {
        let pair = subsampled_streams::stream::F0HardPair::new(100_000, p, 1 << 20);
        let mut worst = 1.0f64;
        for stream in [pair.stream_a(3), pair.stream_b(3)] {
            let truth = ExactStats::from_stream(stream.iter().copied()).f0() as f64;
            let mut est = SampledF0Estimator::new(p, 0.01, 5);
            let mut sampler = BernoulliSampler::new(p, 6);
            sampler.sample_slice(&stream, |x| est.update(x));
            worst = worst.max(ApproxParams::mult_error(est.estimate(), truth));
        }
        let floor = subsampled_streams::core::f0_lower_bound_factor(p);
        assert!(worst >= floor, "p={p}: worst {worst} < floor {floor}");
    }
}

/// Lemma 9 scenario pair: the probability that the sampled streams are
/// distinguishable at all is below 1/10 with the paper's k.
#[test]
fn lemma9_indistinguishability_rate() {
    let p = 0.02;
    let pair = EntropyScenarioPair::new(100_000, p, 1 << 20);
    let s2 = pair.scenario_two(7);
    let bulk = s2[0];
    let trials = 400;
    let mut distinguishable = 0;
    for seed in 0..trials {
        let mut sampler = BernoulliSampler::new(p, seed);
        let mut saw_singleton = false;
        sampler.sample_slice(&s2, |x| {
            saw_singleton |= x != bulk;
        });
        if saw_singleton {
            distinguishable += 1;
        }
    }
    // (1-p)^k with k = 1/(10p) gives ≈ 1 − e^{-1/10} ≈ 0.095.
    let rate = distinguishable as f64 / trials as f64;
    assert!(rate < 0.15, "distinguishable rate {rate} too high");
    assert!(rate > 0.03, "rate {rate} suspiciously low — wrong k?");
}
