//! Wire-codec battery: seeded round trips for every `WireCodec` impl,
//! continued-ingestion equivalence, wire merges vs in-memory merges, and
//! corruption tests asserting typed `CodecError`s (never panics).
//!
//! The contract under test (ISSUE 3 acceptance criteria): for every
//! estimator and for `Monitor`, `decode(encode(x))` yields bitwise
//! identical `estimate()` and `space_bytes()`; continued ingestion after
//! a restore matches the never-serialized run exactly; collector-side
//! `try_merge` of decoded shard snapshots equals the in-memory merge.

use subsampled_streams::codec::{CodecError, WireCodec, WIRE_VERSION};
use subsampled_streams::core::{
    AdaptiveF2Estimator, Estimate, Monitor, MonitorBuilder, NaiveScaledF0, NaiveScaledFk,
    RusuDobraF2, SampledEntropyEstimator, SampledF0Estimator, SampledF1HeavyHitters,
    SampledF2HeavyHitters, SampledFkEstimator, ShardedConfig, ShardedMonitor, SubsampledEstimator,
};
use subsampled_streams::hash::{
    FourWiseSign, PairwiseHash, PolyHash, RngCore64, SplitMix64, TabulationHash, Xoshiro256pp,
};
use subsampled_streams::sketch::levelset::{LevelSetConfig, LevelSetEstimator};
use subsampled_streams::sketch::{
    AmsF2, CmHeavyHitters, CountMin, CountSketch, CsHeavyHitters, EntropyEstimator, HyperLogLog,
    KmvSketch, MedianF0, MgHeavyHitters, MisraGries, PrioritySampler, ReservoirSampler,
    SpaceSaving, TopKTracker, WeightedReservoir,
};
use subsampled_streams::stream::{BernoulliSampler, StreamGen, ZipfStream};

fn roundtrip<T: WireCodec>(x: &T) -> T {
    T::decode_framed(&x.encode_framed()).expect("framed round trip")
}

fn stream(n: u64, seed: u64) -> Vec<u64> {
    ZipfStream::new(2_000, 1.2).generate(n, seed)
}

/// Round-trip a `SubsampledEstimator`: bitwise-equal typed estimate and
/// space, then continued ingestion (batch + per-item) must track the
/// never-serialized run exactly — including the re-encoded bytes, which
/// pins that *all* behavioral state survived the trip.
fn assert_estimator_roundtrip<E>(mut original: E, more: &[u64])
where
    E: SubsampledEstimator + WireCodec,
{
    let mut restored = roundtrip(&original);
    let (a, b) = (
        SubsampledEstimator::estimate(&original),
        SubsampledEstimator::estimate(&restored),
    );
    assert_eq!(
        a.value.to_bits(),
        b.value.to_bits(),
        "estimate not bitwise equal"
    );
    assert_eq!(a, b, "typed estimate differs");
    assert_eq!(original.space_bytes(), restored.space_bytes());
    assert_eq!(original.samples_seen(), restored.samples_seen());
    assert_eq!(original.p().to_bits(), restored.p().to_bits());

    let (head, tail) = more.split_at(more.len() / 2);
    original.update_batch(head);
    restored.update_batch(head);
    for &x in tail {
        SubsampledEstimator::update(&mut original, x);
        SubsampledEstimator::update(&mut restored, x);
    }
    let (a, b) = (
        SubsampledEstimator::estimate(&original),
        SubsampledEstimator::estimate(&restored),
    );
    assert_eq!(
        a.value.to_bits(),
        b.value.to_bits(),
        "continued ingestion diverged"
    );
    assert_eq!(a, b);
    assert_eq!(
        original.encode(),
        restored.encode(),
        "post-restore state diverged from the never-serialized run"
    );
}

#[test]
fn paper_estimators_roundtrip_bitwise_and_continue() {
    let p = 0.3;
    let sampled = BernoulliSampler::new(p, 11).sample_to_vec(&stream(60_000, 1));
    let (feed, more) = sampled.split_at(sampled.len() / 2);

    let mut f0 = SampledF0Estimator::new(p, 0.05, 7);
    f0.update_batch(feed);
    assert_estimator_roundtrip(f0, more);

    let mut fk = SampledFkEstimator::exact(3, p);
    fk.update_batch(feed);
    assert_estimator_roundtrip(fk, more);

    let cfg = LevelSetConfig::for_universe(1 << 14, 128);
    let mut fk_sketched = SampledFkEstimator::sketched(2, p, &cfg, 9);
    fk_sketched.update_batch(feed);
    assert_estimator_roundtrip(fk_sketched, more);

    let mut entropy = SampledEntropyEstimator::new(p, 400, 13);
    entropy.update_batch(feed);
    assert_estimator_roundtrip(entropy, more);

    let mut hh1 = SampledF1HeavyHitters::new(0.05, 0.2, 0.05, p, 15);
    hh1.update_batch(feed);
    assert_estimator_roundtrip(hh1, more);

    let mut hh2 = SampledF2HeavyHitters::new(0.3, 0.2, 0.05, p, 17);
    hh2.update_batch(feed);
    assert_estimator_roundtrip(hh2, more);
}

#[test]
fn baselines_and_adaptive_roundtrip() {
    let p = 0.4;
    let sampled = BernoulliSampler::new(p, 21).sample_to_vec(&stream(40_000, 2));
    let (feed, more) = sampled.split_at(sampled.len() / 2);

    let mut rd = RusuDobraF2::new(p, 5, 32, 23);
    rd.update_batch(feed);
    assert_estimator_roundtrip(rd, more);

    let mut nk = NaiveScaledFk::new(2, p);
    nk.update_batch(feed);
    assert_estimator_roundtrip(nk, more);

    let mut n0 = NaiveScaledF0::new(p, 25);
    n0.update_batch(feed);
    assert_estimator_roundtrip(n0, more);

    let mut ad = AdaptiveF2Estimator::new(p);
    ad.update_batch(feed);
    ad.set_rate(p / 2.0);
    assert_estimator_roundtrip(ad, more);
}

#[test]
fn merged_estimate_after_restore_keeps_merged_provenance() {
    // An estimator that already folded in merged shards must carry the
    // merged weight/samples across the wire.
    let p = 0.5;
    let mut a = SampledEntropyEstimator::new(p, 100, 1);
    let mut b = SampledEntropyEstimator::new(p, 100, 2);
    a.update_batch(&[1, 2, 3, 4, 5, 6, 7, 8]);
    b.update_batch(&[9, 9, 9, 9, 2, 2]);
    SampledEntropyEstimator::merge(&mut a, &b);
    let restored = roundtrip(&a);
    assert_eq!(
        SubsampledEstimator::estimate(&a),
        SubsampledEstimator::estimate(&restored)
    );
    assert_eq!(a.samples_seen(), restored.samples_seen());
}

#[test]
fn hash_primitives_roundtrip_exactly() {
    // PRNGs: the restored generator continues the exact stream.
    let mut sm = SplitMix64::new(99);
    let _ = sm.derive();
    let mut sm2 = roundtrip(&sm);
    for _ in 0..16 {
        assert_eq!(sm.next_u64(), sm2.next_u64());
    }
    let mut xo = Xoshiro256pp::new(5);
    for _ in 0..7 {
        let _ = xo.next_u64();
    }
    let mut xo2 = roundtrip(&xo);
    for _ in 0..32 {
        assert_eq!(xo.next_u64(), xo2.next_u64());
    }

    // Hash families: identical values on a probe set.
    let poly = PolyHash::new(4, 3);
    let poly2 = roundtrip(&poly);
    let pair = PairwiseHash::new(8);
    let pair2 = roundtrip(&pair);
    let sign = FourWiseSign::new(12);
    let sign2 = roundtrip(&sign);
    let tab = TabulationHash::new(31);
    let tab2 = roundtrip(&tab);
    for x in (0..2048u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
        assert_eq!(poly.hash(x), poly2.hash(x));
        assert_eq!(pair.hash(x), pair2.hash(x));
        assert_eq!(pair.level(x), pair2.level(x));
        assert_eq!(sign.sign(x), sign2.sign(x));
        assert_eq!(tab.hash(x), tab2.hash(x));
    }
}

#[test]
fn sampler_roundtrip_continues_the_same_survival_sequence() {
    let data: Vec<u64> = (0..40_000u64).collect();
    let mut s = BernoulliSampler::new(0.13, 77);
    let _ = s.sample_to_vec(&data[..20_000]);
    let mut s2 = roundtrip(&s);
    assert_eq!(
        s.sample_to_vec(&data[20_000..]),
        s2.sample_to_vec(&data[20_000..]),
        "restored sampler must continue the exact survival sequence"
    );
    assert_eq!(s.seed(), s2.seed());
    assert_eq!(s.p(), s2.p());
}

#[test]
fn sketch_substrates_roundtrip_and_continue() {
    let feed = stream(30_000, 3);
    let (head, tail) = feed.split_at(feed.len() / 2);

    let mut kmv = KmvSketch::new(128, 1);
    kmv.update_batch(head);
    let mut kmv2 = roundtrip(&kmv);
    assert_eq!(kmv.estimate().to_bits(), kmv2.estimate().to_bits());
    kmv.update_batch(tail);
    kmv2.update_batch(tail);
    assert_eq!(kmv.estimate().to_bits(), kmv2.estimate().to_bits());

    let mut med = MedianF0::new(64, 5, 2);
    med.update_batch(head);
    let med2 = roundtrip(&med);
    assert_eq!(med.estimate().to_bits(), med2.estimate().to_bits());
    assert_eq!(med.space_words(), med2.space_words());

    let mut ams = AmsF2::new(5, 16, 3);
    ams.update_batch(head);
    let mut ams2 = roundtrip(&ams);
    assert_eq!(ams.estimate().to_bits(), ams2.estimate().to_bits());
    ams.update(42, -3);
    ams2.update(42, -3);
    assert_eq!(ams.estimate().to_bits(), ams2.estimate().to_bits());
    assert_eq!(ams.total(), ams2.total());

    let mut cm = CountMin::new(4, 64, 4);
    cm.update_batch(head);
    let mut cm2 = roundtrip(&cm);
    for x in 0..500u64 {
        assert_eq!(cm.query(x), cm2.query(x));
    }
    cm.update_batch(tail);
    cm2.update_batch(tail);
    assert_eq!(cm.total(), cm2.total());
    for x in 0..500u64 {
        assert_eq!(cm.query(x), cm2.query(x));
    }

    let mut cons = CountMin::new(3, 32, 5).conservative();
    cons.update_batch(head);
    let mut cons2 = roundtrip(&cons);
    cons.update_batch(tail);
    cons2.update_batch(tail);
    for x in 0..500u64 {
        assert_eq!(cons.query(x), cons2.query(x));
    }

    let mut cs = CountSketch::new(5, 128, 6);
    cs.update_batch(head);
    let mut cs2 = roundtrip(&cs);
    assert_eq!(cs.f2_estimate().to_bits(), cs2.f2_estimate().to_bits());
    cs.update_batch(tail);
    cs2.update_batch(tail);
    assert_eq!(cs.f2_estimate().to_bits(), cs2.f2_estimate().to_bits());
    for x in 0..500u64 {
        assert_eq!(cs.query(x), cs2.query(x));
    }

    let mut mg = MisraGries::new(32);
    mg.update_batch(head);
    let mut mg2 = roundtrip(&mg);
    assert_eq!(mg.items(), mg2.items());
    mg.update_batch(tail);
    mg2.update_batch(tail);
    assert_eq!(mg.items(), mg2.items());
    assert_eq!(mg.n(), mg2.n());

    let mut ss = SpaceSaving::new(32);
    ss.update_batch(head);
    let mut ss2 = roundtrip(&ss);
    assert_eq!(ss.items(), ss2.items());
    ss.update_batch(tail);
    ss2.update_batch(tail);
    assert_eq!(ss.items(), ss2.items());

    let mut tk = TopKTracker::new(16);
    for (i, &x) in head.iter().enumerate() {
        tk.offer(x, i as f64);
    }
    let tk2 = roundtrip(&tk);
    assert_eq!(
        tk.candidates().collect::<Vec<_>>(),
        tk2.candidates().collect::<Vec<_>>()
    );

    let mut hll = HyperLogLog::new(10, 7);
    hll.update_batch(head);
    let mut hll2 = roundtrip(&hll);
    assert_eq!(hll.estimate().to_bits(), hll2.estimate().to_bits());
    hll.update_batch(tail);
    hll2.update_batch(tail);
    assert_eq!(hll.estimate().to_bits(), hll2.estimate().to_bits());

    let cfg = LevelSetConfig::for_universe(1 << 12, 64);
    let mut ls = LevelSetEstimator::new(&cfg, 8);
    ls.update_batch(head);
    let mut ls2 = roundtrip(&ls);
    assert_eq!(
        ls.collision_estimate(2).to_bits(),
        ls2.collision_estimate(2).to_bits()
    );
    ls.update_batch(tail);
    ls2.update_batch(tail);
    assert_eq!(
        ls.collision_estimate(2).to_bits(),
        ls2.collision_estimate(2).to_bits()
    );
    assert_eq!(ls.eta().to_bits(), ls2.eta().to_bits());

    let mut ent = EntropyEstimator::new(300, 9);
    ent.update_batch(head);
    let mut ent2 = roundtrip(&ent);
    assert_eq!(ent.estimate().to_bits(), ent2.estimate().to_bits());
    ent.update_batch(tail);
    ent2.update_batch(tail);
    assert_eq!(
        ent.estimate().to_bits(),
        ent2.estimate().to_bits(),
        "entropy reservoirs (heap + RNG + trackers) must replay identically"
    );
    assert_eq!(ent.leader_share(), ent2.leader_share());

    let mut hh = CmHeavyHitters::new(0.05, 0.01, 0.05, 10);
    hh.update_batch(head);
    let mut hhb = roundtrip(&hh);
    assert_eq!(hh.report(), hhb.report());
    hh.update_batch(tail);
    hhb.update_batch(tail);
    assert_eq!(hh.report(), hhb.report());

    let mut cshh = CsHeavyHitters::new(0.3, 0.1, 0.05, 11);
    cshh.update_batch(head);
    let mut cshh2 = roundtrip(&cshh);
    cshh.update_batch(tail);
    cshh2.update_batch(tail);
    assert_eq!(cshh.report(), cshh2.report());

    let mut mghh = MgHeavyHitters::new(0.05, 0.2);
    mghh.update_batch(head);
    let mut mghh2 = roundtrip(&mghh);
    mghh.update_batch(tail);
    mghh2.update_batch(tail);
    assert_eq!(mghh.report(), mghh2.report());
    assert_eq!(mghh.space_words(), mghh2.space_words());
}

#[test]
fn samplers_roundtrip_and_continue() {
    let mut res = ReservoirSampler::<u64>::new(64, 5);
    for x in 0..5_000u64 {
        res.offer(x);
    }
    let mut res2 = roundtrip(&res);
    assert_eq!(res.sample(), res2.sample());
    for x in 5_000..10_000u64 {
        res.offer(x);
        res2.offer(x);
    }
    assert_eq!(
        res.sample(),
        res2.sample(),
        "reservoir replacement chain diverged"
    );

    let mut wres = WeightedReservoir::<u64>::new(32, 6);
    for x in 0..3_000u64 {
        wres.offer(x, 1.0 + (x % 7) as f64);
    }
    let mut wres2 = roundtrip(&wres);
    for x in 3_000..6_000u64 {
        wres.offer(x, 1.0 + (x % 7) as f64);
        wres2.offer(x, 1.0 + (x % 7) as f64);
    }
    let (mut a, mut b) = (
        wres.sample().into_iter().copied().collect::<Vec<_>>(),
        wres2.sample().into_iter().copied().collect::<Vec<_>>(),
    );
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "weighted reservoir diverged after restore");

    let mut ps = PrioritySampler::new(48, 7);
    for x in 0..4_000u64 {
        ps.offer(x, 1.0 + (x % 13) as f64);
    }
    let mut ps2 = roundtrip(&ps);
    assert_eq!(ps.threshold().to_bits(), ps2.threshold().to_bits());
    for x in 4_000..8_000u64 {
        ps.offer(x, 1.0 + (x % 13) as f64);
        ps2.offer(x, 1.0 + (x % 13) as f64);
    }
    assert_eq!(ps.threshold().to_bits(), ps2.threshold().to_bits());
    assert_eq!(
        ps.estimate_total().to_bits(),
        ps2.estimate_total().to_bits(),
        "priority sample diverged after restore"
    );
}

fn full_monitor(p: f64) -> Monitor {
    MonitorBuilder::with_seed(p, 4242)
        .f0(0.05)
        .fk(2)
        .entropy(400)
        .f1_heavy_hitters(0.05, 0.2, 0.05)
        .f2_heavy_hitters(0.3, 0.2, 0.05)
        .register("F2_naive", NaiveScaledFk::new(2, p))
        .register("F0_naive", NaiveScaledF0::new(p, 91))
        .register("F2_rusu_dobra", RusuDobraF2::new(p, 5, 32, 92))
        .register("F2_adaptive", AdaptiveF2Estimator::new(p))
        .build()
}

fn assert_reports_bitwise_equal(a: &Monitor, b: &Monitor) {
    assert_eq!(a.samples_seen(), b.samples_seen());
    assert_eq!(a.space_bytes(), b.space_bytes());
    assert_eq!(a.p().to_bits(), b.p().to_bits());
    let (ra, rb) = (a.report(), b.report());
    assert_eq!(ra.len(), rb.len());
    for ((la, ea), (lb, eb)) in ra.iter().zip(&rb) {
        assert_eq!(la, lb);
        assert_eq!(ea.value.to_bits(), eb.value.to_bits(), "{la} value differs");
        assert_eq!(ea, eb, "{la} estimate differs");
    }
}

#[test]
fn monitor_checkpoint_restore_is_observationally_identical() {
    let p = 0.25;
    let mut monitor = full_monitor(p);
    let sampled = BernoulliSampler::new(p, 51).sample_to_vec(&stream(80_000, 4));
    let (head, tail) = sampled.split_at(sampled.len() / 2);
    monitor.update_batch(head);

    let bytes = monitor.checkpoint().expect("checkpoint");
    let mut restored = Monitor::restore(&bytes).expect("restore");
    assert_reports_bitwise_equal(&monitor, &restored);
    assert_eq!(monitor.wire_layout(), restored.wire_layout());

    // Crash recovery: the restored monitor continues exactly like the
    // process that never died.
    monitor.update_batch(tail);
    restored.update_batch(tail);
    assert_reports_bitwise_equal(&monitor, &restored);
    assert_eq!(
        monitor.checkpoint().expect("a"),
        restored.checkpoint().expect("b"),
        "post-restore checkpoints must be byte-identical"
    );
}

#[test]
fn collector_merge_of_decoded_snapshots_equals_in_memory_merge() {
    let p = 0.2;
    let traffic = stream(90_000, 5);
    let slices: Vec<&[u64]> = traffic.chunks(traffic.len() / 3).collect();

    // Three sites share one builder config; each samples its own slice.
    let mut sites = Vec::new();
    for (s, slice) in slices.iter().enumerate() {
        let mut m = full_monitor(p);
        let mut sampler = BernoulliSampler::new(p, 100 + s as u64);
        sampler.sample_batches(slice, 512, |chunk| m.update_batch(chunk));
        sites.push(m);
    }

    // In-memory collector.
    let mut in_memory = sites[0].clone();
    for other in &sites[1..] {
        in_memory.try_merge(other).expect("in-memory merge");
    }

    // Bytes-over-a-boundary collector: every site ships its snapshot.
    let wires: Vec<Vec<u8>> = sites
        .iter()
        .map(|m| m.checkpoint().expect("site"))
        .collect();
    let mut over_wire = Monitor::restore(&wires[0]).expect("site 0");
    for w in &wires[1..] {
        let site = Monitor::restore(w).expect("site decode");
        over_wire.try_merge(&site).expect("wire merge");
    }

    assert_reports_bitwise_equal(&in_memory, &over_wire);
}

#[test]
fn sharded_monitor_wire_collection_matches_in_memory() {
    let p = 0.3;
    let trace = std::sync::Arc::new(stream(60_000, 6));
    let proto = || {
        MonitorBuilder::with_seed(p, 9)
            .f0(0.05)
            .fk(2)
            .entropy(256)
            .build()
    };

    // Two identical sites (same seeds, same data) -> deterministic state.
    let run_site = |sampler_seed: u64| {
        let mut sm = ShardedMonitor::launch(&proto(), sampler_seed, ShardedConfig::new(2));
        sm.ingest_shared(&trace);
        sm.finish()
    };
    let site_a = run_site(100);
    let site_b = run_site(200);

    let mut in_memory = site_a.clone();
    in_memory.try_merge(&site_b).expect("in-memory");

    let mut over_wire = Monitor::restore(&site_a.checkpoint().expect("a")).expect("a");
    over_wire
        .try_merge(&Monitor::restore(&site_b.checkpoint().expect("b")).expect("b"))
        .expect("wire");

    assert_reports_bitwise_equal(&in_memory, &over_wire);

    // The mid-run snapshot path produces decodable frames too.
    let mut sm = ShardedMonitor::launch(&proto(), 300, ShardedConfig::new(2));
    sm.ingest_shared(&trace);
    let snap =
        Monitor::restore(&sm.snapshot_wire().expect("snapshot encode")).expect("snapshot decode");
    assert!(snap.p() == p);
    let _ = sm.finish();
}

#[test]
fn estimate_roundtrips() {
    let p = 0.25;
    let mut monitor = full_monitor(p);
    monitor.update_batch(&BernoulliSampler::new(p, 61).sample_to_vec(&stream(20_000, 7)));
    for (label, est) in monitor.report() {
        let back = Estimate::decode_framed(&est.encode_framed()).expect("estimate decode");
        assert_eq!(est, back, "{label}");
        assert_eq!(est.value.to_bits(), back.value.to_bits());
    }
}

#[test]
fn corruption_yields_typed_errors_never_panics() {
    let p = 0.5;
    let mut monitor = MonitorBuilder::with_seed(p, 77)
        .f0(0.1)
        .fk(2)
        .entropy(32)
        .f1_heavy_hitters(0.1, 0.2, 0.1)
        .build();
    monitor.update_batch(&BernoulliSampler::new(p, 62).sample_to_vec(&stream(4_000, 8)));
    let bytes = monitor.checkpoint().expect("checkpoint");

    // Every truncation is a typed error, not a panic.
    for cut in 0..bytes.len() {
        match Monitor::restore(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("truncated prefix of {cut} bytes decoded successfully"),
        }
    }

    // Flipped version byte.
    let mut b = bytes.clone();
    b[4] ^= 0x02;
    match Monitor::restore(&b) {
        Err(CodecError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, WIRE_VERSION ^ 0x02);
            assert_eq!(supported, WIRE_VERSION);
        }
        Err(other) => panic!("expected UnsupportedVersion, got {other:?}"),
        Ok(_) => panic!("corrupt version byte decoded successfully"),
    }

    // Wrong top-level statistic/type tag.
    let mut b = bytes.clone();
    b[6] ^= 0x01;
    assert!(matches!(
        Monitor::restore(&b),
        Err(CodecError::TagMismatch { .. })
    ));

    // A frame of the wrong type entirely.
    let est = monitor.report()[0].1.clone();
    assert!(matches!(
        Monitor::restore(&est.encode_framed()),
        Err(CodecError::TagMismatch { .. })
    ));

    // Bad magic.
    let mut b = bytes.clone();
    b[0] = b'X';
    assert!(matches!(
        Monitor::restore(&b),
        Err(CodecError::BadMagic { .. })
    ));

    // Trailing garbage after a complete frame.
    let mut b = bytes.clone();
    b.push(0);
    assert!(matches!(
        Monitor::restore(&b),
        Err(CodecError::TrailingBytes { .. })
    ));

    // Single-byte flip fuzz: the frame checksum guarantees EVERY flip is
    // rejected with a typed error — and none may panic.
    for i in 0..bytes.len() {
        let mut b = bytes.clone();
        b[i] ^= 0xFF;
        assert!(
            Monitor::restore(&b).is_err(),
            "flip at byte {i} decoded successfully"
        );
    }
}

#[test]
fn v2_packed_payload_corruption_is_typed_even_without_the_envelope() {
    // The frame checksum catches every flip of a *framed* buffer (the
    // fuzz above); this drills the decoders themselves on raw v2
    // payloads, where varint-packed sections must reject malformed
    // encodings with typed errors and never panic or misparse.
    use subsampled_streams::codec::{put_varint_u64, Reader};

    let feed = stream(20_000, 9);
    let mut mg = MisraGries::new(64);
    mg.update_batch(&feed);
    let mut cs = CountSketch::new(5, 256, 6);
    cs.update_batch(&feed);
    let mut kmv = KmvSketch::new(128, 1);
    kmv.update_batch(&feed);

    // Truncation at every byte of every packed payload is typed.
    let payload = mg.encode();
    for cut in 0..payload.len() {
        assert!(MisraGries::decode_slice(&payload[..cut]).is_err());
    }
    let payload = cs.encode();
    for cut in 0..payload.len() {
        assert!(CountSketch::decode_slice(&payload[..cut]).is_err());
    }
    let payload = kmv.encode();
    for cut in 0..payload.len() {
        assert!(KmvSketch::decode_slice(&payload[..cut]).is_err());
    }

    // Every single-byte flip of a raw payload either decodes to *some*
    // valid state or fails typed — never a panic, never an OOM (the
    // allocation guards hold without the envelope's checksum).
    let payload = mg.encode();
    for i in 0..payload.len() {
        let mut b = payload.clone();
        b[i] ^= 0xFF;
        let _ = MisraGries::decode_slice(&b);
    }

    // Overlong varint in a v2 scalar slot (k of MisraGries encoded
    // non-canonically as two bytes).
    let mut bad = vec![0x80 | 64, 0x00]; // k = 64, overlong
    put_varint_u64(&mut bad, 0); // n
    put_varint_u64(&mut bad, 0); // empty item column
    put_varint_u64(&mut bad, 0); // empty count column
    assert!(matches!(
        MisraGries::decode_slice(&bad),
        Err(CodecError::Invalid {
            what: "overlong varint encoding"
        })
    ));

    // Truncated varint (continuation bit set, stream ends).
    assert!(matches!(
        MisraGries::decode_slice(&[0xFF]),
        Err(CodecError::Truncated { .. })
    ));

    // An 11-byte varint (more than 64 bits of payload) in a packed
    // stream is rejected before any allocation.
    let mut r = Reader::new(&[0xFF; 16]);
    assert!(r.varint_u64().is_err());

    // Out-of-range zigzag: a 10-byte varint whose final byte carries
    // more than the single permitted bit overflows u64 — the i64 view
    // can never see it as a value.
    let mut bytes = vec![0xFF; 9];
    bytes.push(0x03);
    let mut r = Reader::new(&bytes);
    assert_eq!(
        r.varint_i64(),
        Err(CodecError::Invalid {
            what: "varint encodes more than 64 bits"
        })
    );
}

#[test]
fn delta_checkpoints_roundtrip_and_reject_wrong_bases() {
    let p = 0.3;
    let mut monitor = full_monitor(p);
    let sampled = BernoulliSampler::new(p, 71).sample_to_vec(&stream(60_000, 10));
    let (head, mid, tail) = {
        let (h, rest) = sampled.split_at(sampled.len() / 3);
        let (m, t) = rest.split_at(rest.len() / 2);
        (h, m, t)
    };

    monitor.update_batch(head);
    let base = monitor.checkpoint().expect("base checkpoint");

    monitor.update_batch(mid);
    let delta = monitor.checkpoint_delta(&base).expect("delta checkpoint");
    let full = monitor.checkpoint().expect("full checkpoint");
    assert!(
        delta.len() * 2 < full.len(),
        "steady-state delta ({} B) should be well under the full snapshot ({} B)",
        delta.len(),
        full.len()
    );

    // Applying to the right base rebuilds the exact checkpoint bytes,
    // and the restored monitor is observationally identical.
    assert_eq!(Monitor::apply_delta(&base, &delta).expect("apply"), full);
    let mut restored = Monitor::restore_delta(&base, &delta).expect("restore");
    assert_reports_bitwise_equal(&monitor, &restored);
    monitor.update_batch(tail);
    restored.update_batch(tail);
    assert_reports_bitwise_equal(&monitor, &restored);

    // Wrong base: a *different* checkpoint of the same monitor family.
    let mut other = full_monitor(p);
    other.update_batch(mid);
    let wrong_base = other.checkpoint().expect("other checkpoint");
    assert!(matches!(
        Monitor::apply_delta(&wrong_base, &delta),
        Err(CodecError::BadBase { .. })
    ));
    // A corrupted copy of the right base is also BadBase (checksum).
    let mut bent = base.clone();
    bent[base.len() / 2] ^= 0x10;
    assert!(matches!(
        Monitor::apply_delta(&bent, &delta),
        Err(CodecError::BadBase { .. })
    ));

    // Corrupt delta frames: typed errors at every cut and every flip.
    for cut in [0, 1, delta.len() / 2, delta.len() - 1] {
        assert!(Monitor::apply_delta(&base, &delta[..cut]).is_err());
    }
    for i in (0..delta.len()).step_by(7) {
        let mut b = delta.clone();
        b[i] ^= 0xFF;
        assert!(
            Monitor::apply_delta(&base, &b).is_err(),
            "flip at {i} applied"
        );
    }
}

#[test]
fn sentinel_item_u64_max_survives_the_wire() {
    // The entropy reservoir marks empty slots with item == u64::MAX; a
    // stream that legitimately contains that id must still round-trip
    // (regression: slot-side holder inference rejected its own encoding).
    let mut ent = EntropyEstimator::new(64, 3);
    for i in 0..5_000u64 {
        ent.update(if i % 2 == 0 { u64::MAX } else { i % 37 });
    }
    let mut back = roundtrip(&ent);
    assert_eq!(ent.estimate().to_bits(), back.estimate().to_bits());
    for i in 0..2_000u64 {
        ent.update(u64::MAX.wrapping_sub(i % 3));
        back.update(u64::MAX.wrapping_sub(i % 3));
    }
    assert_eq!(ent.estimate().to_bits(), back.estimate().to_bits());

    let p = 0.5;
    let mut monitor = full_monitor(p);
    let feed: Vec<u64> = (0..4_000u64)
        .map(|i| if i % 3 == 0 { u64::MAX } else { i % 101 })
        .collect();
    monitor.update_batch(&feed);
    let restored = Monitor::restore(&monitor.checkpoint().expect("checkpoint")).expect("restore");
    assert_reports_bitwise_equal(&monitor, &restored);
}

#[derive(Clone)]
struct ThirdPartyEstimator {
    p: f64,
    n: u64,
}

impl SubsampledEstimator for ThirdPartyEstimator {
    fn statistic(&self) -> subsampled_streams::core::Statistic {
        subsampled_streams::core::Statistic::F0
    }
    fn update(&mut self, _x: u64) {
        self.n += 1;
    }
    fn merge(&mut self, other: &Self) {
        self.n += other.n;
    }
    fn estimate(&self) -> Estimate {
        Estimate::scalar(
            self.n as f64,
            subsampled_streams::core::Guarantee::Heuristic,
            self.p,
            self.n,
        )
    }
    fn space_bytes(&self) -> usize {
        16
    }
    fn p(&self) -> f64 {
        self.p
    }
    fn samples_seen(&self) -> u64 {
        self.n
    }
}

impl WireCodec for ThirdPartyEstimator {
    const WIRE_TAG: u16 = 0x7F01; // not in the core decode registry

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.p.encode_into(out);
        self.n.encode_into(out);
    }

    fn decode(r: &mut subsampled_streams::codec::Reader) -> Result<Self, CodecError> {
        Ok(ThirdPartyEstimator {
            p: r.rate()?,
            n: r.u64()?,
        })
    }
}

#[test]
fn checkpoint_rejects_unregistered_estimator_tags_up_front() {
    // A register()-ed estimator whose tag the restore registry cannot
    // decode must fail at CHECKPOINT time (while the live state still
    // exists), not at restore time when the process is gone.
    let monitor = MonitorBuilder::with_seed(0.5, 3)
        .f0(0.05)
        .register("third_party", ThirdPartyEstimator { p: 0.5, n: 0 })
        .build();
    assert_eq!(
        monitor.checkpoint().err(),
        Some(CodecError::UnknownTag { found: 0x7F01 })
    );
    // Built-in-only monitors are unaffected.
    assert!(MonitorBuilder::with_seed(0.5, 3)
        .f0(0.05)
        .build()
        .checkpoint()
        .is_ok());
}

#[test]
fn restored_monitor_rejects_incompatible_merges_like_a_live_one() {
    let a = MonitorBuilder::with_seed(0.5, 1).f0(0.05).build();
    let b = MonitorBuilder::with_seed(0.25, 1).f0(0.05).build();
    let mut ra = Monitor::restore(&a.checkpoint().unwrap()).unwrap();
    let rb = Monitor::restore(&b.checkpoint().unwrap()).unwrap();
    assert!(
        ra.try_merge(&rb).is_err(),
        "rate mismatch must survive the wire"
    );
}
