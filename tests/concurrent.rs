//! Equivalence battery for the shared-atomic pipeline: a quiesced
//! `ConcurrentMonitor` must match the sequential `Monitor` **exactly**
//! on exact substrates (shared-atomic grids keep the prototype's seeds,
//! so at `p = 1` the quiesced grids are the sequential grids bit for
//! bit; key-partitioned maps and bottom-k unions merge exactly), and
//! within each estimator's typed `Estimate` guarantee on the sketched/
//! statistical ones under real sampling — across thread counts and
//! workloads. The 2-thread cases double as the tier-1 smoke for the
//! concurrent machinery under plain `cargo test -q`.

use std::sync::Arc;

use subsampled_streams::core::{
    ConcurrentConfig, ConcurrentMonitor, Monitor, MonitorBuilder, ParallelStrategy, ShardedConfig,
    ShardedMonitor, Statistic,
};
use subsampled_streams::stream::{
    ExactStats, NetFlowStream, PlantedHeavyHitters, StreamGen, ZipfStream,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn workloads(n: u64) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("zipf", ZipfStream::new(2_000, 1.2).generate(n, 11)),
        (
            "netflow",
            NetFlowStream::new(1 << 20, 1.1, 20_000).generate(n, 12),
        ),
        (
            "planted",
            PlantedHeavyHitters::new(1 << 18, 3, 0.5).generate(n, 13),
        ),
    ]
}

fn full_proto(p: f64) -> Monitor {
    MonitorBuilder::with_seed(p, 2024)
        .f0(0.05)
        .fk(2)
        .entropy(1024)
        .f1_heavy_hitters(0.08, 0.2, 0.05)
        .f2_heavy_hitters(0.4, 0.2, 0.05)
        .build()
}

fn run_concurrent(proto: &Monitor, stream: &Arc<Vec<u64>>, threads: usize) -> Monitor {
    let mut cfg = ConcurrentConfig::new(threads);
    cfg.dispatch_chunk = 8192;
    let mut cm = ConcurrentMonitor::launch(proto, 555, cfg);
    cm.ingest_shared(stream);
    cm.finish()
}

/// At `p = 1` every worker ingests its whole slice, so the shared grids
/// see exactly the original multiset. Integer `fetch_add`s commute:
/// whatever the interleaving, the quiesced CountMin grid equals the
/// sequential one bit for bit, so every heavy item the single monitor
/// reports must appear with an *identical* sketch estimate. Bottom-k
/// `F_0` and collision `F_k` are exact under the key partition.
#[test]
fn p_one_quiesced_state_matches_single_monitor() {
    for (name, stream) in workloads(50_000) {
        let stream = Arc::new(stream);
        let mut single = full_proto(1.0);
        single.update_batch(&stream);
        let f0_single = single.estimate(Statistic::F0).unwrap().value;
        let f2_single = single.estimate(Statistic::Fk(2)).unwrap().value;
        let hh_single = single.estimate(Statistic::F1HeavyHitters).unwrap();

        for threads in THREAD_COUNTS {
            let merged = run_concurrent(&full_proto(1.0), &stream, threads);
            assert_eq!(
                merged.samples_seen(),
                stream.len() as u64,
                "{name}/{threads}: p=1 workers must jointly see everything"
            );
            let f0 = merged.estimate(Statistic::F0).unwrap().value;
            assert_eq!(
                f0, f0_single,
                "{name}/{threads}: key-partitioned F0 is exact"
            );
            let f2 = merged.estimate(Statistic::Fk(2)).unwrap().value;
            assert!(
                (f2 - f2_single).abs() <= 1e-6 * f2_single.abs().max(1.0),
                "{name}/{threads}: collision F2 {f2} vs {f2_single}"
            );
            let hh = merged.estimate(Statistic::F1HeavyHitters).unwrap();
            for (item, freq) in &hh_single.report {
                let got = hh
                    .report
                    .iter()
                    .find(|(i, _)| i == item)
                    .unwrap_or_else(|| {
                        panic!("{name}/{threads}: heavy item {item} lost in quiesce")
                    });
                assert!(
                    (got.1 - freq).abs() <= 1e-9 * freq.max(1.0),
                    "{name}/{threads}: item {item} freq {} vs {freq} (grids must be bitwise equal)",
                    got.1
                );
            }
        }
    }
}

/// Under real sampling the quiesced estimates stay within each typed
/// `Estimate`'s documented guarantee of the exact truth.
#[test]
fn sampled_concurrent_estimates_within_documented_tolerance() {
    let p = 0.25;
    for (name, stream) in workloads(120_000) {
        let stream = Arc::new(stream);
        let exact = ExactStats::from_stream(stream.iter().copied());

        for threads in THREAD_COUNTS {
            let merged = run_concurrent(&full_proto(p), &stream, threads);

            let f2 = merged.estimate(Statistic::Fk(2)).unwrap();
            assert!(
                f2.mult_error(exact.fk(2)) < 1.2,
                "{name}/{threads}: F2 error {}",
                f2.mult_error(exact.fk(2))
            );
            let f0 = merged.estimate(Statistic::F0).unwrap();
            assert!(
                f0.mult_error(exact.f0() as f64) <= 4.0 / p.sqrt(),
                "{name}/{threads}: F0 error {} above 4/√p",
                f0.mult_error(exact.f0() as f64)
            );
            let h = merged.estimate(Statistic::Entropy).unwrap();
            let ratio = h.value / exact.entropy();
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{name}/{threads}: entropy ratio {ratio}"
            );
            assert_eq!(f2.samples_seen, merged.samples_seen());
            assert_eq!(f2.p, p);
        }
    }
}

/// Racy heavy-hitter admission is recall-safe: every planted heavy item
/// must survive concurrent ingestion and quiesce at every thread count.
#[test]
fn planted_heavies_survive_concurrent_quiesce() {
    let n = 150_000;
    let p = 0.3;
    let gen = PlantedHeavyHitters::new(1 << 18, 3, 0.5);
    let stream = Arc::new(gen.generate(n, 29));
    let heavies = gen.heavy_items(29);

    for threads in THREAD_COUNTS {
        let merged = run_concurrent(&full_proto(p), &stream, threads);
        let report = merged.estimate(Statistic::F1HeavyHitters).unwrap().report;
        for h in &heavies {
            assert!(
                report.iter().any(|(i, _)| i == h),
                "{threads} threads: planted heavy {h} missing after quiesce"
            );
        }
    }
}

/// `ParallelStrategy::Replicated` is the `ShardedMonitor` deployment
/// without its dispatch layer: same per-worker fork seeds
/// (`split_seed(builder_seed, i)` schedule), same per-worker samplers,
/// same round-robin partition, same merge order — so over the same
/// stream it must reproduce the sharded pipeline's answers.
#[test]
fn replicated_strategy_reproduces_sharded_monitor() {
    let p = 0.2;
    let stream = Arc::new(ZipfStream::new(1_000, 1.1).generate(80_000, 17));

    let mut scfg = ShardedConfig::new(2);
    scfg.dispatch_chunk = 8192;
    let mut sm = ShardedMonitor::launch(&full_proto(p), 555, scfg);
    sm.ingest_shared(&stream);
    let sharded = sm.finish();

    let mut ccfg = ConcurrentConfig::new(2);
    ccfg.dispatch_chunk = 8192;
    ccfg.strategy = ParallelStrategy::Replicated;
    let mut cm = ConcurrentMonitor::launch(&full_proto(p), 555, ccfg);
    cm.ingest_shared(&stream);
    let merged = cm.finish();

    assert_eq!(merged.samples_seen(), sharded.samples_seen());
    for ((la, ea), (lb, eb)) in merged.report().into_iter().zip(sharded.report()) {
        assert_eq!(la, lb);
        assert!(
            (ea.value - eb.value).abs() <= 1e-9 * ea.value.abs().max(1.0),
            "{la}: replicated {} vs sharded {}",
            ea.value,
            eb.value
        );
    }
}

/// The quiesced monitor is a plain `Monitor`: it checkpoints through
/// the codec and restores to the same answers, so the transport/delta/
/// window layers need no concurrent-specific handling.
#[test]
fn quiesced_monitor_round_trips_through_the_codec() {
    let stream = Arc::new(ZipfStream::new(500, 1.2).generate(30_000, 23));
    let merged = run_concurrent(&full_proto(0.5), &stream, 2);
    let bytes = merged.checkpoint().expect("quiesced monitor checkpoints");
    let restored = Monitor::restore(&bytes).expect("round-trip");
    assert_eq!(restored.samples_seen(), merged.samples_seen());
    for ((la, ea), (lb, eb)) in restored.report().into_iter().zip(merged.report()) {
        assert_eq!(la, lb);
        assert_eq!(ea.value, eb.value, "{la}: restore must be value-exact");
    }
}
