//! Cross-version decode pinned by bytes, not by review.
//!
//! Two committed corpora (one framed snapshot per estimator family,
//! written by `examples/gen_wire_fixtures.rs`):
//!
//! * `tests/fixtures/wire_v1/` — **frozen**: written by the last
//!   version-1 build and never regenerated. Every build must keep
//!   decoding these frames under the current codec and answer the
//!   estimates pinned in the manifest bit for bit. (Re-encoding them
//!   produces current-version frames, so byte-identity is checked on
//!   the *round trip through the current format*, not against the v1
//!   bytes.)
//! * `tests/fixtures/wire_v2/` — the current format's corpus: decodes,
//!   answers its pinned estimates, and re-encodes to the *identical*
//!   bytes — any layout change that silently moves the format fails
//!   here before it ships (and is the cue to bump `WIRE_VERSION`, add
//!   a `wire_v3/` corpus and freeze this one).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use subsampled_streams::codec::{peek_frame, WireCodec, WIRE_VERSION, WIRE_VERSION_MIN};
use subsampled_streams::core::{
    AdaptiveF2Estimator, ExactCollisions, LevelSetCollisions, Monitor, NaiveScaledF0,
    NaiveScaledFk, RusuDobraF2, SampledEntropyEstimator, SampledF0Estimator, SampledF1HeavyHitters,
    SampledF2HeavyHitters, SampledFkEstimator, Statistic, SubsampledEstimator,
};
use subsampled_streams::window::WindowedMonitor;

fn fixture_dir(version: u16) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("tests/fixtures/wire_v{version}"))
}

struct ManifestRow {
    tag: u16,
    estimate_bits: u64,
    samples_seen: u64,
    bytes: usize,
}

fn manifest(version: u16) -> BTreeMap<String, ManifestRow> {
    let text = std::fs::read_to_string(fixture_dir(version).join("manifest.tsv"))
        .expect("committed manifest.tsv");
    let mut rows = BTreeMap::new();
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 5, "manifest row: {line}");
        let parse_hex =
            |s: &str| u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("hex field");
        rows.insert(
            cols[0].to_string(),
            ManifestRow {
                tag: parse_hex(cols[1]) as u16,
                estimate_bits: parse_hex(cols[2]),
                samples_seen: cols[3].parse().expect("samples field"),
                bytes: cols[4].parse().expect("bytes field"),
            },
        );
    }
    rows
}

/// Decode a fixture by family name; return `(estimate bits, samples
/// seen, re-encoded bytes)`. Adding an estimator family to the
/// generator without teaching this dispatcher fails the test.
fn decode_fixture(name: &str, bytes: &[u8]) -> (u64, u64, Vec<u8>) {
    fn typed<E: SubsampledEstimator + WireCodec>(bytes: &[u8]) -> (u64, u64, Vec<u8>) {
        let est = E::decode_framed(bytes).expect("committed fixture decodes");
        (
            SubsampledEstimator::estimate(&est).value.to_bits(),
            est.samples_seen(),
            est.encode_framed(),
        )
    }
    match name {
        "f0" => typed::<SampledF0Estimator>(bytes),
        "fk_exact" => typed::<SampledFkEstimator<ExactCollisions>>(bytes),
        "fk_sketched" => typed::<SampledFkEstimator<LevelSetCollisions>>(bytes),
        "entropy" => typed::<SampledEntropyEstimator>(bytes),
        "hh_f1" => typed::<SampledF1HeavyHitters>(bytes),
        "hh_f2" => typed::<SampledF2HeavyHitters>(bytes),
        "rusu_dobra_f2" => typed::<RusuDobraF2>(bytes),
        "naive_fk" => typed::<NaiveScaledFk>(bytes),
        "naive_f0" => typed::<NaiveScaledF0>(bytes),
        "adaptive_f2" => typed::<AdaptiveF2Estimator>(bytes),
        "monitor_full" => {
            let m = Monitor::restore(bytes).expect("committed monitor restores");
            (
                m.estimate(Statistic::Fk(2))
                    .expect("registered")
                    .value
                    .to_bits(),
                m.samples_seen(),
                m.checkpoint().expect("restored monitor re-checkpoints"),
            )
        }
        "windowed_monitor" => {
            let w = WindowedMonitor::restore(bytes).expect("committed window restores");
            (
                w.estimate(Statistic::Fk(2))
                    .expect("registered")
                    .value
                    .to_bits(),
                w.window_samples(),
                w.checkpoint().expect("restored window re-checkpoints"),
            )
        }
        other => panic!("fixture '{other}' has no decoder in this test — add one"),
    }
}

/// Shared corpus walk: decode every committed fixture of `version`,
/// check its pinned estimate/provenance bits, and hand the re-encoded
/// bytes to `check_reencoded`.
fn check_corpus(version: u16, check_reencoded: impl Fn(&str, &[u8], Vec<u8>)) {
    let rows = manifest(version);
    assert!(
        rows.len() >= 11,
        "corpus should cover every estimator family, found {}",
        rows.len()
    );
    for (name, row) in &rows {
        let bytes = std::fs::read(fixture_dir(version).join(format!("{name}.bin")))
            .expect("committed fixture");
        assert_eq!(bytes.len(), row.bytes, "{name}: committed size changed");

        let (found_version, tag, payload) = peek_frame(&bytes).expect("frame header");
        assert_eq!(found_version, version, "{name}: corpus carries its version");
        assert!(
            (WIRE_VERSION_MIN..=WIRE_VERSION).contains(&found_version),
            "{name}: version {found_version} fell out of the supported window \
             [{WIRE_VERSION_MIN}, {WIRE_VERSION}] — old frames must stay decodable"
        );
        assert_eq!(tag, row.tag, "{name}: wire tag changed");
        assert!(payload > 0);

        let (estimate_bits, samples_seen, reencoded) = decode_fixture(name, &bytes);
        assert_eq!(
            estimate_bits, row.estimate_bits,
            "{name}: decoded estimate drifted from the pinned bits"
        );
        assert_eq!(samples_seen, row.samples_seen, "{name}: provenance drifted");
        check_reencoded(name, &bytes, reencoded);
    }
}

#[test]
fn committed_v1_corpus_decodes_under_the_v2_codec() {
    check_corpus(1, |name, _original, reencoded| {
        // Re-encoding a v1-decoded state writes the *current* format;
        // the result must be a valid current-version frame that decodes
        // back to the same pinned estimate — the full v1 → v2 migration
        // path, exercised on every committed family.
        let (version, _, _) = peek_frame(&reencoded).expect("re-encoded frame header");
        assert_eq!(
            version, WIRE_VERSION,
            "{name}: re-encode must write the current version"
        );
        let (bits_a, samples_a, _) = decode_fixture(name, &reencoded);
        let rows = manifest(1);
        let row = &rows[name];
        assert_eq!(
            bits_a, row.estimate_bits,
            "{name}: v1 → v2 re-encode changed the estimate"
        );
        assert_eq!(samples_a, row.samples_seen);
    });
}

#[test]
fn committed_v2_corpus_decodes_and_reencodes_identically() {
    check_corpus(2, |name, original, reencoded| {
        assert_eq!(
            reencoded, original,
            "{name}: decode→encode no longer reproduces the committed bytes"
        );
    });
}

#[test]
fn v2_snapshots_are_at_least_2x_smaller_than_v1() {
    // The compaction target, pinned on the committed corpora (same
    // seeds, same stream, same parameters in both generators): the
    // full-monitor v2 snapshot must stay ≥ 2× smaller than v1.
    let v1 = manifest(1);
    let v2 = manifest(2);
    let (a, b) = (v1["monitor_full"].bytes, v2["monitor_full"].bytes);
    assert!(
        b * 2 <= a,
        "monitor_full: v2 snapshot {b} B is not 2x smaller than v1 {a} B"
    );
    // And the Rusu–Dobra wire-bloat fix specifically (was ~6x state).
    let (a, b) = (v1["rusu_dobra_f2"].bytes, v2["rusu_dobra_f2"].bytes);
    assert!(
        b * 4 <= a,
        "rusu_dobra_f2: v2 snapshot {b} B should be far below v1's {a} B"
    );
}

#[test]
fn corpus_files_match_manifest_exactly() {
    // No orphan fixtures, no missing ones: the directory and the
    // manifest must agree file for file — in both corpora.
    for version in [1u16, 2] {
        let rows = manifest(version);
        let mut on_disk: Vec<String> = std::fs::read_dir(fixture_dir(version))
            .expect("fixture dir")
            .filter_map(|e| {
                let name = e
                    .expect("dir entry")
                    .file_name()
                    .into_string()
                    .expect("utf-8");
                name.strip_suffix(".bin").map(|s| s.to_string())
            })
            .collect();
        on_disk.sort();
        let mut in_manifest: Vec<String> = rows.keys().cloned().collect();
        in_manifest.sort();
        assert_eq!(on_disk, in_manifest, "wire_v{version}");
    }
}
