//! Cross-version decode pinned by bytes, not by review: the committed
//! `tests/fixtures/wire_v1/` corpus (one framed version-1 snapshot per
//! estimator family, written once by `examples/gen_wire_fixtures.rs`)
//! must keep decoding on every build, answer the estimates pinned in
//! the manifest, and re-encode to the *identical* bytes. Any codec or
//! estimator-layout change that silently breaks version-1 frames fails
//! here before it ships.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use subsampled_streams::codec::{peek_frame, WireCodec, WIRE_VERSION};
use subsampled_streams::core::{
    AdaptiveF2Estimator, ExactCollisions, LevelSetCollisions, Monitor, NaiveScaledF0,
    NaiveScaledFk, RusuDobraF2, SampledEntropyEstimator, SampledF0Estimator, SampledF1HeavyHitters,
    SampledF2HeavyHitters, SampledFkEstimator, Statistic, SubsampledEstimator,
};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wire_v1")
}

struct ManifestRow {
    tag: u16,
    estimate_bits: u64,
    samples_seen: u64,
    bytes: usize,
}

fn manifest() -> BTreeMap<String, ManifestRow> {
    let text = std::fs::read_to_string(fixture_dir().join("manifest.tsv"))
        .expect("committed manifest.tsv");
    let mut rows = BTreeMap::new();
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 5, "manifest row: {line}");
        let parse_hex =
            |s: &str| u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("hex field");
        rows.insert(
            cols[0].to_string(),
            ManifestRow {
                tag: parse_hex(cols[1]) as u16,
                estimate_bits: parse_hex(cols[2]),
                samples_seen: cols[3].parse().expect("samples field"),
                bytes: cols[4].parse().expect("bytes field"),
            },
        );
    }
    rows
}

/// Decode a fixture by family name; return `(estimate bits, samples
/// seen, re-encoded bytes)`. Adding an estimator family to the
/// generator without teaching this dispatcher fails the test.
fn decode_fixture(name: &str, bytes: &[u8]) -> (u64, u64, Vec<u8>) {
    fn typed<E: SubsampledEstimator + WireCodec>(bytes: &[u8]) -> (u64, u64, Vec<u8>) {
        let est = E::decode_framed(bytes).expect("version-1 fixture decodes");
        (
            SubsampledEstimator::estimate(&est).value.to_bits(),
            est.samples_seen(),
            est.encode_framed(),
        )
    }
    match name {
        "f0" => typed::<SampledF0Estimator>(bytes),
        "fk_exact" => typed::<SampledFkEstimator<ExactCollisions>>(bytes),
        "fk_sketched" => typed::<SampledFkEstimator<LevelSetCollisions>>(bytes),
        "entropy" => typed::<SampledEntropyEstimator>(bytes),
        "hh_f1" => typed::<SampledF1HeavyHitters>(bytes),
        "hh_f2" => typed::<SampledF2HeavyHitters>(bytes),
        "rusu_dobra_f2" => typed::<RusuDobraF2>(bytes),
        "naive_fk" => typed::<NaiveScaledFk>(bytes),
        "naive_f0" => typed::<NaiveScaledF0>(bytes),
        "adaptive_f2" => typed::<AdaptiveF2Estimator>(bytes),
        "monitor_full" => {
            let m = Monitor::restore(bytes).expect("version-1 monitor restores");
            (
                m.estimate(Statistic::Fk(2))
                    .expect("registered")
                    .value
                    .to_bits(),
                m.samples_seen(),
                m.checkpoint().expect("restored monitor re-checkpoints"),
            )
        }
        other => panic!("fixture '{other}' has no decoder in this test — add one"),
    }
}

#[test]
fn committed_v1_corpus_decodes_and_reencodes_identically() {
    let rows = manifest();
    assert!(
        rows.len() >= 11,
        "corpus should cover every estimator family, found {}",
        rows.len()
    );
    for (name, row) in &rows {
        let bytes =
            std::fs::read(fixture_dir().join(format!("{name}.bin"))).expect("committed fixture");
        assert_eq!(bytes.len(), row.bytes, "{name}: committed size changed");

        let (version, tag, payload) = peek_frame(&bytes).expect("frame header");
        assert_eq!(version, 1, "{name}: corpus is version-1 by definition");
        assert_eq!(
            version, WIRE_VERSION,
            "{name}: WIRE_VERSION moved — keep version-1 frames decodable \
             and add a new corpus instead of regenerating this one"
        );
        assert_eq!(tag, row.tag, "{name}: wire tag changed");
        assert!(payload > 0);

        let (estimate_bits, samples_seen, reencoded) = decode_fixture(name, &bytes);
        assert_eq!(
            estimate_bits, row.estimate_bits,
            "{name}: decoded estimate drifted from the pinned bits"
        );
        assert_eq!(samples_seen, row.samples_seen, "{name}: provenance drifted");
        assert_eq!(
            reencoded, bytes,
            "{name}: decode→encode no longer reproduces the committed bytes"
        );
    }
}

#[test]
fn corpus_files_match_manifest_exactly() {
    // No orphan fixtures, no missing ones: the directory and the
    // manifest must agree file for file.
    let rows = manifest();
    let mut on_disk: Vec<String> = std::fs::read_dir(fixture_dir())
        .expect("fixture dir")
        .filter_map(|e| {
            let name = e
                .expect("dir entry")
                .file_name()
                .into_string()
                .expect("utf-8");
            name.strip_suffix(".bin").map(|s| s.to_string())
        })
        .collect();
    on_disk.sort();
    let mut in_manifest: Vec<String> = rows.keys().cloned().collect();
    in_manifest.sort();
    assert_eq!(on_disk, in_manifest);
}
