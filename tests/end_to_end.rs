//! End-to-end integration: generator → Bernoulli sampler → estimator, all
//! through the facade crate's public API, checked against exact statistics.

use subsampled_streams::core::{
    recommended_levelset_config, ApproxParams, SampledEntropyEstimator, SampledF0Estimator,
    SampledF1HeavyHitters, SampledFkEstimator,
};
use subsampled_streams::stream::{
    BernoulliSampler, ExactStats, NetFlowStream, PlantedHeavyHitters, StreamGen, UniformStream,
    ZipfStream,
};

/// One pass over a sampled stream feeding every estimator the paper
/// provides, validated jointly. This is the "monitor deployment" shape the
/// examples use, exercised across stream families.
#[test]
fn full_monitor_pipeline_on_three_workloads() {
    let n: u64 = 200_000;
    let p = 0.1;
    let workloads: Vec<(&str, Vec<u64>)> = vec![
        ("zipf", ZipfStream::new(20_000, 1.2).generate(n, 1)),
        ("uniform", UniformStream::new(5_000).generate(n, 2)),
        (
            "netflow",
            NetFlowStream::new(1 << 20, 1.1, 50_000).generate(n, 3),
        ),
    ];

    for (name, stream) in &workloads {
        let exact = ExactStats::from_stream(stream.iter().copied());

        let mut f2 = SampledFkEstimator::exact(2, p);
        let mut f3 = SampledFkEstimator::exact(3, p);
        let mut f0 = SampledF0Estimator::new(p, 0.01, 7);
        let mut h = SampledEntropyEstimator::new(p, 2000, 7);

        let mut sampler = BernoulliSampler::new(p, 1234);
        sampler.sample_slice(stream, |x| {
            f2.update(x);
            f3.update(x);
            f0.update(x);
            h.update(x);
        });

        // F2/F3: within 15% on every workload at p = 0.1.
        let e2 = ApproxParams::mult_error(f2.estimate(), exact.fk(2));
        let e3 = ApproxParams::mult_error(f3.estimate(), exact.fk(3));
        assert!(e2 < 1.15, "{name}: F2 error {e2}");
        assert!(e3 < 1.25, "{name}: F3 error {e3}");

        // F0: within the Lemma 8 ceiling.
        let e0 = ApproxParams::mult_error(f0.estimate(), exact.f0() as f64);
        assert!(e0 <= f0.error_factor(), "{name}: F0 error {e0}");

        // Entropy: constant factor (all three workloads are far above the
        // Theorem 5 threshold).
        let he = h.estimate();
        let ht = exact.entropy();
        assert!(ht > h.guarantee_threshold(n), "{name}: workload too flat");
        assert!(
            he / ht > 0.5 && he / ht < 2.0,
            "{name}: entropy ratio {}",
            he / ht
        );
    }
}

#[test]
fn sketched_pipeline_matches_exact_pipeline() {
    // The full small-space pipeline (level sets) agrees with the
    // exact-collision pipeline on the same sample, within sketch error.
    let n: u64 = 150_000;
    let m: u64 = 10_000;
    let p = 0.2;
    let stream = ZipfStream::new(m, 1.3).generate(n, 5);
    let cfg = recommended_levelset_config(2, m, p, 0.2);

    let mut exact_est = SampledFkEstimator::exact(2, p);
    let mut sketched_est = SampledFkEstimator::sketched(2, p, &cfg, 17);
    let mut sampler = BernoulliSampler::new(p, 18);
    sampler.sample_slice(&stream, |x| {
        exact_est.update(x);
        sketched_est.update(x);
    });

    let a = exact_est.estimate();
    let b = sketched_est.estimate();
    assert!((a - b).abs() / a < 0.25, "exact-oracle {a} vs sketched {b}");
    // And the sketched structure really is smaller than the exact map on
    // this workload.
    assert!(sketched_est.space_words() > 0);
}

#[test]
fn heavy_hitter_pipeline_against_planted_truth() {
    let n: u64 = 400_000;
    let gen = PlantedHeavyHitters::new(1 << 18, 5, 0.5);
    let stream = gen.generate(n, 9);
    let heavies = gen.heavy_items(9);
    let exact = ExactStats::from_stream(stream.iter().copied());
    let p = 0.2;

    let mut hh = SampledF1HeavyHitters::new(0.05, 0.2, 0.05, p, 11);
    assert!(n as f64 >= hh.premise_min_f1(n), "premise violated");
    let mut sampler = BernoulliSampler::new(p, 12);
    sampler.sample_slice(&stream, |x| hh.update(x));

    let report = hh.report();
    for &hvy in &heavies {
        let entry = report.iter().find(|&&(i, _)| i == hvy);
        let (_, f_est) = entry.unwrap_or_else(|| panic!("heavy {hvy} missing"));
        let f_true = exact.freq(hvy) as f64;
        assert!(
            (f_est - f_true).abs() / f_true < 0.2,
            "estimate {f_est} vs {f_true}"
        );
    }
    let cutoff = (1.0 - 0.2) * 0.05 * n as f64;
    for &(i, _) in &report {
        assert!(exact.freq(i) as f64 >= cutoff, "false positive {i}");
    }
}

#[test]
fn moment_estimates_are_internally_consistent() {
    // φ̃_1 ≤ φ̃_2 ≤ φ̃_3 ≤ φ̃_4 must hold (F_i is monotone in i for any
    // frequency vector with all f_i ≥ 1), and φ̃_1 must equal |L|/p.
    let stream = ZipfStream::new(1000, 1.0).generate(100_000, 13);
    let p = 0.3;
    let mut est = SampledFkEstimator::exact(4, p);
    let mut sampler = BernoulliSampler::new(p, 14);
    let mut kept = 0u64;
    sampler.sample_slice(&stream, |x| {
        est.update(x);
        kept += 1;
    });
    let phis = est.estimate_all();
    assert_eq!(phis[0], kept as f64 / p);
    for w in phis.windows(2) {
        assert!(
            w[1] >= w[0] * 0.95,
            "moment monotonicity violated: {phis:?}"
        );
    }
}

#[test]
fn facade_reexports_compose() {
    // The facade's module aliases must interoperate (types are the same).
    use subsampled_streams::hash::RngCore64;
    let mut rng = subsampled_streams::hash::Xoshiro256pp::new(1);
    let x = rng.next_below(10);
    assert!(x < 10);
    let s = subsampled_streams::sketch::CountMin::new(2, 16, 1);
    assert_eq!(s.total(), 0);
}
