//! Tier-1 gate: the workspace must be `sss-lint` clean. This is the
//! same check CI's `lint` job runs via the CLI, wired into `cargo test`
//! so a violation fails the suite locally too.

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let violations = sss_lint::lint_workspace(root).expect("walk workspace sources");
    assert!(
        violations.is_empty(),
        "sss-lint violations (see crates/core/src/README.md, \"Invariants & static analysis\"):\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
