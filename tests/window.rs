//! The windowed-statistics acceptance battery.
//!
//! The load-bearing claim: a [`WindowedMonitor`]'s fold over the last
//! `W` buckets answers **exactly** what a fresh `Monitor` fed only
//! those items would — bitwise for the exact substrates (bottom-k
//! `F_0`, collision-counting `F_k`) at every retirement pattern, at
//! `p = 1` and under sampling alike (the fold and the fresh monitor
//! see the same surviving multiset, and exact substrates are
//! partition-independent). Entropy merges length-weighted across
//! reseeded per-bucket reservoirs, so it carries a documented tolerance
//! instead. Plus: checkpoint → restore → continue-ingesting is
//! bitwise-equal to the never-serialized run, and the continuous-query
//! surface fires (and round-trips) deterministically.

use subsampled_streams::codec::WireCodec;
use subsampled_streams::core::{Monitor, MonitorBuilder, Statistic};
use subsampled_streams::stream::{
    BernoulliSampler, NetFlowStream, PlantedHeavyHitters, StreamGen, TimedStream, ZipfStream,
};
use subsampled_streams::window::{QuerySpec, WindowConfig, WindowedMonitor};

const SPAN: u64 = 1_000;

fn prototype(p: f64) -> Monitor {
    MonitorBuilder::with_seed(p, 4711)
        .f0(0.05)
        .fk(2)
        .entropy(512)
        .build()
}

/// The battery's workloads: heavy-tailed, synthetic netflow, planted.
fn workloads() -> Vec<(&'static str, Box<dyn StreamGen>)> {
    vec![
        ("zipf", Box::new(ZipfStream::new(4_000, 1.2))),
        ("netflow", Box::new(NetFlowStream::new(1 << 14, 1.3, 5_000))),
        (
            "planted",
            Box::new(PlantedHeavyHitters::new(10_000, 8, 0.4)),
        ),
    ]
}

/// Sampled `(ts, item)` survivors of a dense unit-tick trace: item `i`
/// arrives at tick `i`, so epoch boundaries are exact index ranges and
/// the "last W buckets" is a precise suffix of the raw stream.
fn sampled_trace(gen: &dyn StreamGen, n: u64, p: f64, seed: u64) -> Vec<(u64, u64)> {
    let raw = gen.generate(n, seed);
    let mut survivors = Vec::new();
    let mut sampler = BernoulliSampler::new(p, seed ^ 0xabcd);
    sampler.sample_indexed(&raw, |i, x| survivors.push((i as u64, x)));
    survivors
}

/// Feed the trace through a window of `buckets` buckets and through a
/// fresh monitor restricted to the final window range; compare.
fn check_equivalence(name: &str, buckets: usize, p: f64, trace: &[(u64, u64)], epochs: u64) {
    let mut windowed = WindowedMonitor::new(prototype(p), WindowConfig::new(buckets, SPAN));
    for &(ts, x) in trace {
        windowed.ingest_at(ts, x);
    }

    let cur = windowed.cur_epoch();
    assert_eq!(cur, epochs - 1, "{name}: dense trace reaches every epoch");
    let oldest = cur.saturating_sub(buckets as u64 - 1);
    let mut fresh = prototype(p);
    let window_items: Vec<u64> = trace
        .iter()
        .filter(|(ts, _)| ts / SPAN >= oldest)
        .map(|&(_, x)| x)
        .collect();
    fresh.update_batch(&window_items);

    let fold = windowed.fold();
    assert_eq!(
        fold.samples_seen(),
        fresh.samples_seen(),
        "{name}/{buckets}: window covers exactly the suffix"
    );
    for stat in [Statistic::F0, Statistic::Fk(2)] {
        let a = fold.estimate(stat).expect("registered").value;
        let b = fresh.estimate(stat).expect("registered").value;
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{name}/{buckets} buckets/p={p}: {stat} must be bitwise-equal to fresh"
        );
    }
    // Entropy: same items, but per-bucket reservoirs are reseeded per
    // epoch and merge length-weighted — a documented tolerance, not an
    // exactness claim.
    let ha = fold.estimate(Statistic::Entropy).expect("registered").value;
    let hb = fresh
        .estimate(Statistic::Entropy)
        .expect("registered")
        .value;
    assert!(
        (ha - hb).abs() <= 0.25 * hb.abs().max(1.0),
        "{name}/{buckets}/p={p}: windowed entropy {ha} strayed from fresh {hb}"
    );
}

#[test]
fn windowed_equals_fresh_over_every_retirement_pattern() {
    let epochs = 10u64;
    let n = epochs * SPAN;
    for (name, gen) in workloads() {
        for &p in &[1.0, 0.25] {
            let trace = sampled_trace(gen.as_ref(), n, p, 42);
            for &buckets in &[1usize, 2, 4, 7] {
                check_equivalence(name, buckets, p, &trace, epochs);
            }
        }
    }
}

#[test]
fn sparse_traces_with_empty_epochs_still_match_fresh() {
    // Bursty arrivals: everything lands in epochs {0, 1, 5, 6, 9} —
    // epochs in between never materialise, jumps cross several epochs
    // at once, and one jump (1 -> 5) clears a 4-bucket window whole.
    let gen = ZipfStream::new(2_000, 1.2);
    let raw = gen.generate(5_000, 7);
    let burst_epochs = [0u64, 1, 5, 6, 9];
    let trace: Vec<(u64, u64)> = raw
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let e = burst_epochs[i % burst_epochs.len()];
            // Position within the epoch keeps timestamps increasing
            // inside each burst; the ingest order below is by burst.
            (e * SPAN + (i as u64 / 5) % SPAN, x)
        })
        .collect();
    let mut by_epoch = trace.clone();
    by_epoch.sort_by_key(|&(ts, _)| ts);

    for buckets in [2usize, 4, 7] {
        let mut windowed = WindowedMonitor::new(prototype(1.0), WindowConfig::new(buckets, SPAN));
        for &(ts, x) in &by_epoch {
            windowed.ingest_at(ts, x);
        }
        let oldest = windowed.cur_epoch().saturating_sub(buckets as u64 - 1);
        let mut fresh = prototype(1.0);
        let window_items: Vec<u64> = by_epoch
            .iter()
            .filter(|(ts, _)| ts / SPAN >= oldest)
            .map(|&(_, x)| x)
            .collect();
        fresh.update_batch(&window_items);
        let fold = windowed.fold();
        assert_eq!(
            fold.samples_seen(),
            fresh.samples_seen(),
            "{buckets} buckets"
        );
        for stat in [Statistic::F0, Statistic::Fk(2)] {
            assert_eq!(
                fold.estimate(stat).expect("registered").value.to_bits(),
                fresh.estimate(stat).expect("registered").value.to_bits(),
                "{buckets} buckets: {stat}"
            );
        }
    }
}

#[test]
fn checkpoint_restore_continue_matches_the_never_serialized_run() {
    let p = 0.25;
    let trace = sampled_trace(&TimedStreamless, 12_000, p, 99);
    let (head, tail) = trace.split_at(trace.len() / 2);

    let mut live = WindowedMonitor::new(prototype(p), WindowConfig::new(4, SPAN));
    live.register_query(QuerySpec::delta_vs_prev("jump", "F0", 0.3));
    live.register_query(QuerySpec::change_point("cp", "entropy", 3, 3.0));
    for &(ts, x) in head {
        live.ingest_at(ts, x);
    }

    let snapshot = live.checkpoint().expect("mid-stream checkpoint");
    let mut restored = WindowedMonitor::restore(&snapshot).expect("restores");
    assert_eq!(
        restored.checkpoint().expect("re-checkpoint"),
        snapshot,
        "snapshot is byte-stable through a round trip"
    );

    for &(ts, x) in tail {
        live.ingest_at(ts, x);
        restored.ingest_at(ts, x);
    }
    // The restored window continued *bitwise* — same buckets (forks are
    // pure functions of prototype + epoch), same reservoir RNG state,
    // same query runtime state, same pending alerts.
    assert_eq!(
        live.checkpoint().expect("live"),
        restored.checkpoint().expect("restored"),
        "continue-after-restore must be indistinguishable"
    );
    assert_eq!(live.take_alerts(), restored.take_alerts());
}

/// A tiny local generator for the restore test: zipf items, used via
/// the same `sampled_trace` helper.
struct TimedStreamless;
impl StreamGen for TimedStreamless {
    fn universe(&self) -> u64 {
        3_000
    }
    fn emit(&self, n: u64, seed: u64, f: &mut dyn FnMut(u64)) {
        ZipfStream::new(3_000, 1.1).emit(n, seed, f)
    }
}

#[test]
fn event_time_trace_drives_windows_through_timed_stream() {
    // The event-time hook end to end: a TimedStream netflow trace with
    // mean gap 3 ticks, sampled at the window's rate, windows of 5
    // epochs — counters and clock line up with the trace's final tick.
    let p = 0.5;
    let timed = TimedStream::new(NetFlowStream::new(1 << 12, 1.3, 2_000), 3.0);
    let trace = timed.generate(20_000, 11);
    let mut sampler = BernoulliSampler::new(p, 12);
    let mut w = WindowedMonitor::new(prototype(p), WindowConfig::new(5, 2_000));
    let mut survivors = 0u64;
    for &(ts, x) in &trace {
        if sampler.keep() {
            w.ingest_at(ts, x);
            survivors += 1;
        }
    }
    let last_ts = trace.last().expect("nonempty").0;
    assert_eq!(w.cur_epoch(), last_ts / 2_000);
    assert_eq!(w.total_ingested(), survivors);
    assert!(w.estimate(Statistic::F0).expect("registered").value > 0.0);
}

#[test]
fn continuous_queries_flag_a_planted_dispersion_anomaly() {
    // Calm zipf epochs, then two scan epochs of fresh addresses each —
    // F0 jumps an order of magnitude; threshold + delta queries must
    // fire in the scan epochs and stay silent before them.
    let p = 1.0;
    let mut w = WindowedMonitor::new(prototype(p), WindowConfig::new(1, SPAN));
    w.register_query(QuerySpec::threshold("f0_high", "F0", 400.0, true));
    w.register_query(QuerySpec::delta_vs_prev("f0_jump", "F0", 1.0));

    let calm = ZipfStream::new(64, 1.5); // few distinct destinations
    for epoch in 0..8u64 {
        let items: Vec<u64> = if epoch == 5 || epoch == 6 {
            (0..SPAN).map(|i| 1_000_000 + epoch * SPAN + i).collect()
        } else {
            calm.generate(SPAN, 100 + epoch)
        };
        for (i, &x) in items.iter().enumerate() {
            w.ingest_at(epoch * SPAN + i as u64, x);
        }
    }
    w.advance_to(8); // close the final epoch so its queries run
    let alerts = w.take_alerts();
    let fired: Vec<u64> = alerts.iter().map(|a| a.epoch).collect();
    assert!(
        fired.iter().all(|&e| (5..=7).contains(&e)),
        "alerts outside the anomaly: {fired:?}"
    );
    assert!(
        alerts.iter().any(|a| a.query == "f0_high" && a.epoch == 5),
        "threshold must fire in the first scan epoch: {alerts:?}"
    );
    assert!(
        alerts.iter().any(|a| a.query == "f0_jump"),
        "delta-vs-prev must catch the jump: {alerts:?}"
    );
}

#[test]
fn windowed_snapshot_frames_carry_the_0x06_tag_range() {
    let mut w = WindowedMonitor::new(prototype(0.5), WindowConfig::new(3, SPAN));
    for ts in 0..3 * SPAN {
        if ts % 2 == 0 {
            w.ingest_at(ts, ts % 97);
        }
    }
    let bytes = w.checkpoint().expect("checkpoint");
    let (version, tag, _) = subsampled_streams::codec::peek_frame(&bytes).expect("frame header");
    assert_eq!(version, subsampled_streams::codec::WIRE_VERSION);
    assert_eq!(tag, WindowedMonitor::WIRE_TAG);
    assert_eq!(tag >> 8, 0x06, "window tags live in the 0x06xx range");
}
