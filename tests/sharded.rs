//! Deterministic cross-shard battery: for every registered statistic,
//! `ShardedMonitor(N).finish()` must agree with the single-threaded
//! `Monitor` — exactly for exact-merge substrates (at `p = 1`, where the
//! shards jointly see precisely the original stream), and within the
//! documented tolerance for sketched/statistical ones under real
//! sampling — across shard counts N ∈ {1, 2, 4, 7} and the zipf, netflow
//! and planted workload generators.

use std::sync::Arc;

use subsampled_streams::core::{Monitor, MonitorBuilder, ShardedConfig, ShardedMonitor, Statistic};
use subsampled_streams::stream::{
    ExactStats, NetFlowStream, PlantedHeavyHitters, StreamGen, ZipfStream,
};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn workloads(n: u64) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("zipf", ZipfStream::new(2_000, 1.2).generate(n, 11)),
        (
            "netflow",
            NetFlowStream::new(1 << 20, 1.1, 20_000).generate(n, 12),
        ),
        (
            "planted",
            PlantedHeavyHitters::new(1 << 18, 3, 0.5).generate(n, 13),
        ),
    ]
}

fn full_proto(p: f64) -> Monitor {
    MonitorBuilder::with_seed(p, 2024)
        .f0(0.05)
        .fk(2)
        .entropy(1024)
        .f1_heavy_hitters(0.08, 0.2, 0.05)
        .f2_heavy_hitters(0.4, 0.2, 0.05)
        .build()
}

fn run_sharded(proto: &Monitor, stream: &Arc<Vec<u64>>, shards: usize) -> Monitor {
    let mut cfg = ShardedConfig::new(shards);
    cfg.dispatch_chunk = 8192; // several chunks per shard even on small streams
    let mut sm = ShardedMonitor::launch(proto, 555, cfg);
    sm.ingest_shared(stream);
    sm.finish()
}

/// At `p = 1` every worker keeps its whole slice, so the union of the
/// shard streams is exactly the original stream and exact-merge
/// substrates (bottom-k `F_0`, collision-oracle `F_k`, CountMin `F_1`
/// heavy hitters) must answer identically to one monitor over the whole
/// stream; entropy merges as a length-weighted shard average and only
/// promises its constant-factor band.
#[test]
fn p_one_exact_substrates_match_single_monitor_exactly() {
    for (name, stream) in workloads(50_000) {
        let stream = Arc::new(stream);
        let mut single = full_proto(1.0);
        single.update_batch(&stream);
        let f0_single = single.estimate(Statistic::F0).unwrap().value;
        let f2_single = single.estimate(Statistic::Fk(2)).unwrap().value;
        let hh_single = single.estimate(Statistic::F1HeavyHitters).unwrap();
        let h_single = single.estimate(Statistic::Entropy).unwrap().value;

        for shards in SHARD_COUNTS {
            let merged = run_sharded(&full_proto(1.0), &stream, shards);
            assert_eq!(
                merged.samples_seen(),
                stream.len() as u64,
                "{name}/{shards}: p=1 shards must jointly see everything"
            );
            let f0 = merged.estimate(Statistic::F0).unwrap().value;
            assert_eq!(f0, f0_single, "{name}/{shards}: bottom-k F0 merge is exact");
            let f2 = merged.estimate(Statistic::Fk(2)).unwrap().value;
            assert!(
                (f2 - f2_single).abs() <= 1e-6 * f2_single.abs().max(1.0),
                "{name}/{shards}: collision F2 merge is exact algebra, got {f2} vs {f2_single}"
            );
            // CountMin is linear with shared hashes: every heavy item the
            // single monitor reports must be reported by the merged view
            // with an identical sketch estimate.
            let hh = merged.estimate(Statistic::F1HeavyHitters).unwrap();
            for (item, freq) in &hh_single.report {
                let got = hh
                    .report
                    .iter()
                    .find(|(i, _)| i == item)
                    .unwrap_or_else(|| panic!("{name}/{shards}: heavy item {item} lost in merge"));
                assert!(
                    (got.1 - freq).abs() <= 1e-9 * freq.max(1.0),
                    "{name}/{shards}: item {item} freq {} vs {freq}",
                    got.1
                );
            }
            // Entropy: documented length-weighted approximation — shards
            // see round-robin slices of the same mix, so the weighted
            // average stays within a constant band of the single estimate.
            let h = merged.estimate(Statistic::Entropy).unwrap().value;
            let ratio = h / h_single.max(1e-9);
            assert!(
                (0.67..=1.5).contains(&ratio),
                "{name}/{shards}: entropy ratio {ratio} ({h} vs {h_single})"
            );
        }
    }
}

/// Under real sampling (`p < 1`) the sharded pipeline answers within each
/// estimator's documented tolerance of the exact truth, for every shard
/// count and workload.
#[test]
fn sampled_sharded_estimates_within_documented_tolerance() {
    let p = 0.25;
    for (name, stream) in workloads(120_000) {
        let stream = Arc::new(stream);
        let exact = ExactStats::from_stream(stream.iter().copied());

        for shards in SHARD_COUNTS {
            let merged = run_sharded(&full_proto(p), &stream, shards);

            // F2 via exact collisions: Theorem 1 band (generous cushion).
            let f2 = merged.estimate(Statistic::Fk(2)).unwrap();
            assert!(
                f2.mult_error(exact.fk(2)) < 1.2,
                "{name}/{shards}: F2 error {}",
                f2.mult_error(exact.fk(2))
            );

            // F0: Lemma 8's 4/√p ceiling.
            let f0 = merged.estimate(Statistic::F0).unwrap();
            assert!(
                f0.mult_error(exact.f0() as f64) <= 4.0 / p.sqrt(),
                "{name}/{shards}: F0 error {} above 4/√p",
                f0.mult_error(exact.f0() as f64)
            );

            // Entropy: Theorem 5 constant-factor band.
            let h = merged.estimate(Statistic::Entropy).unwrap();
            let ratio = h.value / exact.entropy();
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{name}/{shards}: entropy ratio {ratio}"
            );

            // Provenance: the union, not one shard.
            assert_eq!(f2.samples_seen, merged.samples_seen());
            assert_eq!(f2.p, p);
        }
    }
}

/// The planted-heavy-hitter workload end to end: every planted heavy item
/// must survive sharding + merging at every shard count.
#[test]
fn planted_heavies_survive_sharded_merge() {
    let n = 150_000;
    let p = 0.3;
    let gen = PlantedHeavyHitters::new(1 << 18, 3, 0.5);
    let stream = Arc::new(gen.generate(n, 29));
    let heavies = gen.heavy_items(29);

    for shards in SHARD_COUNTS {
        let merged = run_sharded(&full_proto(p), &stream, shards);
        let report = merged.estimate(Statistic::F1HeavyHitters).unwrap().report;
        for h in &heavies {
            assert!(
                report.iter().any(|(i, _)| i == h),
                "{shards} shards: planted heavy {h} missing from merged report"
            );
        }
    }
}

/// A single shard is byte-for-byte the single-threaded pipeline: shard 0's
/// fork plus the lane-0 split sampler, fed the same chunks in order.
#[test]
fn one_shard_equals_the_equivalent_single_threaded_run() {
    use subsampled_streams::hash::split_seed;
    use subsampled_streams::stream::BernoulliSampler;

    let p = 0.2;
    let stream = Arc::new(ZipfStream::new(1_000, 1.1).generate(80_000, 17));
    let sampler_seed = 555;

    // The sharded run.
    let mut cfg = ShardedConfig::new(1);
    cfg.dispatch_chunk = 8192;
    let mut sm = ShardedMonitor::launch(&full_proto(p), sampler_seed, cfg);
    sm.ingest_shared(&stream);
    let sharded = sm.finish();

    // The same computation, inline: fork_shard(0) + split_seed(·, 0),
    // sampled per 8192-element chunk exactly as the worker does (4096 is
    // the ShardedConfig::new sample_batch default).
    let mut single = full_proto(p).fork_shard(0);
    let mut sampler = BernoulliSampler::new(p, split_seed(sampler_seed, 0));
    for chunk in stream.chunks(8192) {
        sampler.sample_batches(chunk, 4096, |batch| single.update_batch(batch));
    }

    assert_eq!(sharded.samples_seen(), single.samples_seen());
    for ((la, ea), (lb, eb)) in sharded.report().into_iter().zip(single.report()) {
        assert_eq!(la, lb);
        assert!(
            (ea.value - eb.value).abs() <= 1e-9 * ea.value.abs().max(1.0),
            "{la}: sharded {} vs single {}",
            ea.value,
            eb.value
        );
    }
}
