//! # Space-efficient estimation of statistics over sub-sampled streams
//!
//! A Rust implementation of McGregor, Pavan, Tirthapura & Woodruff
//! (PODS 2012 / Algorithmica 2016). An original stream `P` is Bernoulli
//! sampled at a known rate `p`; the monitor sees only the sampled stream
//! `L` and must estimate aggregates of `P` in one pass and small space.
//!
//! ## Quickstart: one monitor, one pass, every statistic
//!
//! The paper's five results are unified behind the
//! [`SubsampledEstimator`](core::SubsampledEstimator) trait and driven
//! together by a [`Monitor`](core::Monitor): register the statistics you
//! want, feed the sampled stream once (batched), read typed estimates.
//!
//! ```
//! use subsampled_streams::core::{MonitorBuilder, Statistic};
//! use subsampled_streams::stream::{BernoulliSampler, ExactStats, StreamGen, ZipfStream};
//!
//! // The original stream — which the monitor never sees in full.
//! let p = 0.1;
//! let stream = ZipfStream::new(10_000, 1.2).generate(100_000, 1);
//! let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
//!
//! // One monitor answering four questions from the same sample.
//! let mut monitor = MonitorBuilder::new(p)
//!     .f0(0.05)                         // Algorithm 2: distinct elements
//!     .fk(2)                            // Algorithm 1: second moment
//!     .entropy(2000)                    // Theorem 5: empirical entropy
//!     .f1_heavy_hitters(0.02, 0.2, 0.05) // Theorem 6: elephants
//!     .build();
//!
//! // Single pass over the Bernoulli sample, batched hot path.
//! let mut sampler = BernoulliSampler::new(p, 99);
//! sampler.sample_batches(&stream, 1024, |chunk| monitor.update_batch(chunk));
//!
//! let f2 = monitor.estimate(Statistic::Fk(2)).unwrap();
//! assert!(f2.mult_error(truth) < 1.1, "F2 within 10% from a 10% sample");
//! assert_eq!(f2.p, p); // every estimate carries its provenance
//! ```
//!
//! Monitors built from the same configuration **merge**: per-site monitors
//! over disjoint traffic combine into one that answers for the union —
//! exactly for the collision/bottom-k/CountMin substrates (linear or
//! set-union merges), within sketch error for the rest. See
//! `examples/distributed_collector.rs`.
//!
//! Monitors (and every sketch and estimator underneath them) also
//! **serialize**: [`codec::WireCodec`] gives each one a versioned binary
//! wire format, so shard snapshots cross process boundaries as bytes
//! ([`Monitor::checkpoint`](core::Monitor::checkpoint) /
//! [`Monitor::restore`](core::Monitor::restore)) — the real distributed
//! deployment, plus crash recovery for long-running monitors.
//!
//! ## Layout
//!
//! This facade re-exports the five workspace crates:
//!
//! * [`codec`] — the dependency-free versioned wire codec
//!   ([`WireCodec`](codec::WireCodec), typed
//!   [`CodecError`](codec::CodecError)s),
//! * [`hash`] — PRNGs and k-wise independent hash families,
//! * [`stream`] — workload generators, samplers (including the batched
//!   [`sample_batches`](stream::BernoulliSampler::sample_batches) feed)
//!   and exact ground truth,
//! * [`sketch`] — the classic streaming substrates (CountMin,
//!   CountSketch, Misra–Gries, SpaceSaving, AMS, KMV, HyperLogLog,
//!   Indyk–Woodruff level sets, entropy estimation, reservoir/priority
//!   sampling), all mergeable and batch-capable,
//! * [`core`] — the paper's estimators behind the unified trait, the
//!   [`Monitor`](core::Monitor) pipeline, the baselines, and the
//!   flow-distribution / adaptive-rate extensions,
//! * [`transport`] — the TCP snapshot transport: a
//!   [`CollectorServer`](transport::CollectorServer) accepting site
//!   connections and folding their pushed snapshots (per-reason
//!   rejection counters, sequence-number dedup), and a
//!   [`SiteClient`](transport::SiteClient) shipping checkpoints with
//!   bounded-retry exponential-backoff reconnect,
//! * [`window`] — sliding-window and time-decayed statistics: the
//!   tumbling-bucket [`WindowedMonitor`](window::WindowedMonitor)
//!   (each bucket a full sub-`Monitor`; queries fold live buckets
//!   through the merge algebra), the exponential-decay
//!   [`DecayedMonitor`](window::DecayedMonitor), and a continuous-query
//!   surface emitting typed [`Alert`](window::Alert)s on bucket
//!   rollover,
//! * [`obs`] — the workspace-wide observability layer: a process-global
//!   metric [`Registry`](obs::Registry) (atomic counters, gauges, log2
//!   histograms) and event tracer every other crate records into,
//!   Prometheus/JSON renders, and a wire-exportable
//!   [`MetricsSnapshot`](obs::MetricsSnapshot) that sites push to the
//!   collector's stats endpoint.

#![forbid(unsafe_code)]

pub use sss_codec as codec;
pub use sss_core as core;
pub use sss_hash as hash;
pub use sss_obs as obs;
pub use sss_sketch as sketch;
pub use sss_stream as stream;
pub use sss_transport as transport;
pub use sss_window as window;

pub use sss_core::{
    Estimate, Guarantee, MergeError, Monitor, MonitorBuilder, ShardedConfig, ShardedMonitor,
    Statistic, SubsampledEstimator,
};
pub use sss_transport::{
    ClientConfig, CollectorServer, ServerConfig, SiteClient, TransportError, TransportStats,
};
pub use sss_window::{
    Alert, AlertKind, DecayedMonitor, QueryKind, QuerySpec, ShardedWindowedMonitor, WindowConfig,
    WindowedMonitor,
};
