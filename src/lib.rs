//! # Space-efficient estimation of statistics over sub-sampled streams
//!
//! A Rust implementation of McGregor, Pavan, Tirthapura & Woodruff
//! (PODS 2012 / Algorithmica 2016). An original stream `P` is Bernoulli
//! sampled at a known rate `p`; the monitor sees only the sampled stream
//! `L` and must estimate aggregates of `P` in one pass and small space.
//!
//! This facade re-exports the four workspace crates:
//!
//! * [`hash`] — PRNGs and k-wise independent hash families,
//! * [`stream`] — workload generators, samplers and exact ground truth,
//! * [`sketch`] — the classic streaming substrates (CountMin,
//!   CountSketch, Misra–Gries, AMS, KMV, HyperLogLog, Indyk–Woodruff
//!   level sets, entropy estimation, reservoir/priority sampling),
//! * [`core`] — the paper's estimators: `F_k` (Algorithm 1), `F_0`
//!   (Algorithm 2), entropy (Theorem 5), heavy hitters (Theorems 6–7),
//!   the baselines, and the flow-distribution / adaptive-rate extensions.
//!
//! ```
//! use subsampled_streams::core::SampledFkEstimator;
//! use subsampled_streams::stream::{BernoulliSampler, ExactStats, StreamGen, ZipfStream};
//!
//! // The original stream — which the monitor never sees in full.
//! let p = 0.1;
//! let stream = ZipfStream::new(10_000, 1.2).generate(100_000, 1);
//! let truth = ExactStats::from_stream(stream.iter().copied()).fk(2);
//!
//! // The monitor: Algorithm 1 over the Bernoulli sample.
//! let mut est = SampledFkEstimator::exact(2, p);
//! let mut sampler = BernoulliSampler::new(p, 99);
//! sampler.sample_slice(&stream, |x| est.update(x));
//!
//! let rel_err = (est.estimate() - truth).abs() / truth;
//! assert!(rel_err < 0.1, "F2 within 10% from a 10% sample");
//! ```

pub use sss_core as core;
pub use sss_hash as hash;
pub use sss_sketch as sketch;
pub use sss_stream as stream;
